#include "physics/psychrometrics.hpp"

#include <cmath>

#include "util/logging.hpp"
#include "util/stats.hpp"

namespace coolair {
namespace physics {

double
saturationVaporPressure(double temp_c)
{
    return kMagnusC * std::exp(kMagnusA * temp_c / (kMagnusB + temp_c));
}

double
absoluteHumidity(double temp_c, double rh_percent)
{
    double vp = saturationVaporPressure(temp_c) * rh_percent / 100.0;
    double kelvin = temp_c + 273.15;
    // Ideal gas: rho_v = p_v / (R_v * T); convert kg/m^3 -> g/m^3.
    return 1000.0 * vp / (kVaporGasConstant * kelvin);
}

double
relativeHumidity(double temp_c, double abs_gm3)
{
    double kelvin = temp_c + 273.15;
    double vp = abs_gm3 / 1000.0 * kVaporGasConstant * kelvin;
    return 100.0 * vp / saturationVaporPressure(temp_c);
}

double
dewPoint(double temp_c, double rh_percent)
{
    rh_percent = util::clamp(rh_percent, 0.1, 100.0);
    double gamma = std::log(rh_percent / 100.0) +
                   kMagnusA * temp_c / (kMagnusB + temp_c);
    return kMagnusB * gamma / (kMagnusA - gamma);
}

double
wetBulb(double temp_c, double rh_percent)
{
    double rh = util::clamp(rh_percent, 5.0, 99.0);
    // Stull (2011), "Wet-bulb temperature from relative humidity and
    // air temperature".
    double tw = temp_c * std::atan(0.151977 * std::sqrt(rh + 8.313659)) +
                std::atan(temp_c + rh) - std::atan(rh - 1.676331) +
                0.00391838 * std::pow(rh, 1.5) *
                    std::atan(0.023101 * rh) -
                4.686035;
    return std::min(tw, temp_c);
}

double
evaporativeOutletTemp(double temp_c, double rh_percent,
                      double effectiveness)
{
    double wb = wetBulb(temp_c, rh_percent);
    return temp_c - util::clamp(effectiveness, 0.0, 1.0) * (temp_c - wb);
}

double
AirState::relHumidity() const
{
    return relativeHumidity(tempC, absHumidity);
}

AirState
AirState::fromRelative(double temp_c, double rh_percent)
{
    return AirState{temp_c, absoluteHumidity(temp_c, rh_percent)};
}

AirState
mix(const AirState &a, const AirState &b, double frac_a)
{
    frac_a = util::clamp(frac_a, 0.0, 1.0);
    AirState out;
    out.tempC = frac_a * a.tempC + (1.0 - frac_a) * b.tempC;
    out.absHumidity = frac_a * a.absHumidity + (1.0 - frac_a) * b.absHumidity;
    return out;
}

double
heatAirMass(double temp_c, double volume_m3, double heat_joules)
{
    if (volume_m3 <= 0.0)
        util::panic("heatAirMass: volume must be positive");
    double heat_capacity = kAirDensity * volume_m3 * kAirSpecificHeat;
    return temp_c + heat_joules / heat_capacity;
}

} // namespace physics
} // namespace coolair
