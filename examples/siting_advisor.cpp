/**
 * @file
 * Siting advisor: score candidate datacenter sites for free cooling.
 *
 * The paper's Figures 12/13 show that where a free-cooled datacenter is
 * built determines both the energy benefit and the reliability exposure.
 * This example evaluates a handful of candidate latitudes/climates and
 * reports, for each: the baseline's PUE and temperature variation, what
 * CoolAir (All-ND) would achieve there, and a simple verdict — the kind
 * of what-if analysis §6 suggests operators run before deployment
 * ("our simulation infrastructure would allow the datacenter operator to
 * evaluate multiple settings even before real deployment").
 *
 * Usage:  siting_advisor [weeks=26]
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "environment/world_grid.hpp"
#include "sim/runner.hpp"
#include "util/logging.hpp"
#include "util/parse.hpp"
#include "util/table.hpp"

using namespace coolair;

int
main(int argc, char **argv)
{
    int weeks = 26;
    if (argc > 1) {
        long long v = 0;
        // Strict: a typo'd week count fails loudly instead of running
        // a silently-wrong year sample.
        if (!util::parseInt(argv[1], v) || v < 1 || v > 52) {
            std::fprintf(stderr,
                         "siting_advisor: weeks must be an integer in "
                         "[1, 52], got '%s'\n",
                         argv[1]);
            return 1;
        }
        weeks = int(v);
    }

    // Candidate sites: a spread of climates an enterprise might weigh.
    struct Candidate
    {
        const char *name;
        double latitude;
        double continentality;
        double aridity;
    };
    const Candidate candidates[] = {
        {"subarctic-maritime", 62.0, 0.15, 0.1},
        {"cool-continental", 50.0, 0.80, 0.3},
        {"temperate-coastal", 40.0, 0.25, 0.3},
        {"mediterranean", 35.0, 0.45, 0.6},
        {"desert", 28.0, 0.70, 0.95},
        {"tropical-humid", 5.0, 0.20, 0.05},
    };

    std::printf("Scoring %zu candidate sites (%d-week year sample)...\n\n",
                std::size(candidates), weeks);

    // Baseline + All-ND per candidate, fanned out over the runner.
    std::vector<sim::ExperimentSpec> specs;
    for (const Candidate &c : candidates) {
        environment::Location loc;
        loc.name = c.name;
        loc.latitude = c.latitude;
        loc.longitude = 0.0;
        loc.climate = environment::climateFor(c.latitude, c.continentality,
                                              c.aridity);

        sim::ExperimentSpec spec;
        spec.location = loc;
        spec.weeks = weeks;
        spec.workload = sim::WorkloadKind::FacebookProfile;
        spec.physicsStepS = 120.0;
        spec.system = sim::SystemId::Baseline;
        specs.push_back(spec);
        spec.system = sim::SystemId::AllNd;
        specs.push_back(spec);
    }

    sim::RunnerConfig rc;
    rc.progress = true;
    rc.progressEvery = 2;
    rc.progressLabel = "candidate runs";
    // Progress goes through the logger at Info; keep it visible here.
    util::Logger::instance().setLevel(util::LogLevel::Info);
    sim::SweepOutcome sweep = sim::ExperimentRunner(rc).run(specs);
    for (const auto &f : sweep.failures)
        std::fprintf(stderr, "FAILED %s / %s: %s\n",
                     f.spec.location.name.c_str(),
                     sim::systemName(f.spec.system), f.message.c_str());
    if (!sweep.allOk())
        return 1;

    util::TextTable table({"site", "PUE (base)", "PUE (CoolAir)",
                           "max range (base)", "max range (CoolAir)",
                           "verdict"});

    for (size_t i = 0; i < std::size(candidates); ++i) {
        const Candidate &c = candidates[i];
        const sim::ExperimentResult &base = sweep.results[2 * i];
        const sim::ExperimentResult &coolair = sweep.results[2 * i + 1];

        const char *verdict;
        bool cheap = coolair.system.pue < 1.15;
        bool tight = coolair.system.maxWorstDailyRangeC <
                     base.system.maxWorstDailyRangeC + 0.5;
        if (cheap && tight)
            verdict = "excellent for free cooling";
        else if (cheap)
            verdict = "cheap, watch variation";
        else if (coolair.system.pue < base.system.pue)
            verdict = "CoolAir pays for itself";
        else
            verdict = "needs backup cooling budget";

        table.addRow({c.name, util::TextTable::fmt(base.system.pue, 3),
                      util::TextTable::fmt(coolair.system.pue, 3),
                      util::TextTable::fmt(
                          base.system.maxWorstDailyRangeC, 1),
                      util::TextTable::fmt(
                          coolair.system.maxWorstDailyRangeC, 1),
                      verdict});
    }
    table.print(std::cout);

    std::printf("\nReading the table: PUE is yearly (incl. 0.08 power "
                "delivery); ranges are the worst\nper-day sensor swing "
                "(disk-reliability exposure per El-Sayed et al.).\n");
    return 0;
}
