/**
 * @file
 * coolair_top — a live terminal dashboard for a running coolair_serve
 * daemon, built entirely on the public telemetry verbs:
 *
 *   HEALTH            status / uptime / worker occupancy
 *   METRICS           Prometheus text (counters, latency histogram)
 *   SERIES <stat> n   sampled history, rendered as a sparkline
 *
 * Usage:
 *   coolair_top (--socket <path> | --port <port>)
 *               [--interval <seconds>]   refresh period (default 2)
 *               [--iterations <n>]       stop after n refreshes
 *                                        (0 = run until interrupted)
 *               [--no-ansi]              plain append-only output
 *
 * Latency quantiles (p50/p95/p99) are derived client-side from the
 * cumulative `coolair_serve_latency_seconds_bucket{le="..."}` series,
 * exactly as a Prometheus `histogram_quantile()` would, so the
 * dashboard needs nothing beyond the scrape text.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "util/parse.hpp"

using namespace coolair;

namespace {

[[noreturn]] void
usage(const char *msg)
{
    std::fprintf(stderr, "error: %s\n(see the header comment in "
                         "examples/coolair_top.cpp for usage)\n",
                 msg);
    std::exit(2);
}

/** Cumulative `le` histogram buckets scraped from METRICS. */
struct ScrapedHistogram
{
    std::vector<double> bounds;      ///< finite `le` values, ascending.
    std::vector<double> cumulative;  ///< counts at each bound.
    double count = 0.0;              ///< the +Inf bucket / _count.
};

/** Everything one METRICS scrape yields. */
struct Scrape
{
    std::map<std::string, double> values;
    std::map<std::string, ScrapedHistogram> histograms;
};

/** Parse Prometheus text exposition (the subset coolair_serve emits). */
Scrape
parseMetrics(const std::string &text)
{
    Scrape out;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        const size_t space = line.rfind(' ');
        if (space == std::string::npos)
            continue;
        const std::string key = line.substr(0, space);
        const double value = std::strtod(line.c_str() + space + 1, nullptr);

        const size_t brace = key.find('{');
        if (brace == std::string::npos) {
            out.values[key] = value;
            continue;
        }
        // `<name>_bucket{le="..."}` is the only labeled shape we emit.
        const std::string name = key.substr(0, brace);
        const std::string suffix = "_bucket";
        if (name.size() <= suffix.size() ||
            name.compare(name.size() - suffix.size(), suffix.size(),
                         suffix) != 0)
            continue;
        const std::string metric = name.substr(0, name.size() - suffix.size());
        const size_t q1 = key.find('"', brace);
        const size_t q2 = q1 == std::string::npos ? std::string::npos
                                                  : key.find('"', q1 + 1);
        if (q2 == std::string::npos)
            continue;
        const std::string le = key.substr(q1 + 1, q2 - q1 - 1);
        ScrapedHistogram &h = out.histograms[metric];
        if (le == "+Inf") {
            h.count = value;
        } else {
            h.bounds.push_back(std::strtod(le.c_str(), nullptr));
            h.cumulative.push_back(value);
        }
    }
    return out;
}

/** histogram_quantile over cumulative buckets (linear within bucket). */
double
quantile(const ScrapedHistogram &h, double q)
{
    if (h.count <= 0.0 || h.bounds.empty())
        return 0.0;
    const double target = q * h.count;
    double lower = 0.0;
    double below = 0.0;
    for (size_t i = 0; i < h.bounds.size(); ++i) {
        const double inBucket = h.cumulative[i] - below;
        if (h.cumulative[i] >= target && inBucket > 0.0)
            return lower + (target - below) / inBucket *
                               (h.bounds[i] - lower);
        below = h.cumulative[i];
        lower = h.bounds[i];
    }
    return h.bounds.back();
}

/** Unicode sparkline of @p values scaled to their own max. */
std::string
sparkline(const std::vector<double> &values)
{
    static const char *kBlocks[] = {"▁", "▂", "▃",
                                    "▄", "▅", "▆",
                                    "▇", "█"};
    double top = 0.0;
    for (double v : values)
        top = std::max(top, v);
    std::string out;
    for (double v : values) {
        const int idx =
            top > 0.0
                ? std::min(7, int(v / top * 7.999))
                : 0;
        out += kBlocks[idx];
    }
    return out;
}

/** `SERIES <stat> n` payload -> per-second rates between samples. */
std::vector<double>
seriesRates(const std::string &payload)
{
    std::vector<std::pair<int64_t, double>> points;
    std::istringstream is(payload);
    int64_t ms = 0;
    double value = 0.0;
    while (is >> ms >> value)
        points.emplace_back(ms, value);
    std::vector<double> rates;
    for (size_t i = 1; i < points.size(); ++i) {
        const double dt =
            double(points[i].first - points[i - 1].first) / 1000.0;
        rates.push_back(
            dt > 0.0
                ? std::max(0.0, points[i].second - points[i - 1].second) / dt
                : 0.0);
    }
    return rates;
}

double
metricOr(const Scrape &s, const std::string &name, double fallback)
{
    auto it = s.values.find(name);
    return it == s.values.end() ? fallback : it->second;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string socketPath;
    int port = -1;
    double interval = 2.0;
    long long iterations = 0;
    bool ansi = true;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(("missing value for " + arg).c_str());
            return argv[++i];
        };
        if (arg == "--socket") {
            socketPath = next();
        } else if (arg == "--port") {
            long long p = 0;
            const std::string text = next();
            if (!util::parseInt(text, p) || p < 1 || p > 65535)
                usage(("bad port: '" + text + "'").c_str());
            port = int(p);
        } else if (arg == "--interval") {
            const std::string text = next();
            char *end = nullptr;
            interval = std::strtod(text.c_str(), &end);
            if (end == text.c_str() || *end != '\0' || interval <= 0.0)
                usage(("bad interval: '" + text + "'").c_str());
        } else if (arg == "--iterations") {
            const std::string text = next();
            if (!util::parseInt(text, iterations) || iterations < 0)
                usage(("bad iteration count: '" + text + "'").c_str());
        } else if (arg == "--no-ansi") {
            ansi = false;
        } else {
            usage(("unknown option: " + arg).c_str());
        }
    }
    if (socketPath.empty() && port < 0)
        usage("need --socket <path> or --port <port>");

    try {
        serve::Client client = socketPath.empty()
                                   ? serve::Client::connectTcp(port)
                                   : serve::Client::connectUnix(socketPath);

        for (long long tick = 0; iterations == 0 || tick < iterations;
             ++tick) {
            auto health = client.request("HEALTH");
            auto metrics = client.request("METRICS");
            if (!health.ok || !metrics.ok) {
                std::fprintf(stderr, "coolair_top: server went away (%s)\n",
                             (!health.ok ? health.error : metrics.error)
                                 .c_str());
                return 1;
            }
            // The sampled request counter feeds the throughput spark;
            // an ERR (sampler warming up / disabled) just means no
            // sparkline this round.
            auto series = client.request("SERIES serve.requests 60");
            const std::vector<double> rates =
                series.ok ? seriesRates(series.payload)
                          : std::vector<double>();

            const Scrape s = parseMetrics(metrics.payload);
            const double requests =
                metricOr(s, "coolair_serve_requests_total", 0);
            const double storeHits =
                metricOr(s, "coolair_serve_store_hits_total", 0);
            const double dedupHits =
                metricOr(s, "coolair_serve_dedup_hits_total", 0);
            const double runs = metricOr(s, "coolair_serve_runs_total", 0);
            const double failures =
                metricOr(s, "coolair_serve_run_failures_total", 0);
            const double warmPct =
                requests > 0.0
                    ? 100.0 * (storeHits + dedupHits) / requests
                    : 0.0;
            const double rate = rates.empty() ? 0.0 : rates.back();

            if (ansi)
                std::printf("\033[H\033[2J");
            std::printf("coolair_top — %s\n\n", health.payload.substr(
                            0, health.payload.find('\n')).c_str());
            std::printf("%s\n", health.payload.c_str());
            std::printf("requests %.0f   runs %.0f   store hits %.0f   "
                        "dedup hits %.0f   failures %.0f\n",
                        requests, runs, storeHits, dedupHits, failures);
            std::printf("warm-served %.1f%%   throughput %.2f specs/s\n",
                        warmPct, rate);
            // Hot-tier line only when the server runs one: hit rate of
            // the in-RAM cache plus its LRU eviction pressure.
            const double hotHits =
                metricOr(s, "coolair_serve_hot_hits_total", 0);
            const double hotMisses =
                metricOr(s, "coolair_serve_hot_misses_total", 0);
            if (hotHits + hotMisses > 0.0)
                std::printf("hot cache %.1f%% hit   entries %.0f   "
                            "bytes %.0f   evictions %.0f\n",
                            100.0 * hotHits / (hotHits + hotMisses),
                            metricOr(s, "coolair_serve_hot_entries", 0),
                            metricOr(s, "coolair_serve_hot_bytes", 0),
                            metricOr(s,
                                     "coolair_serve_hot_evictions_total",
                                     0));
            // Coalescing line only when batches have dispatched: mean
            // lane fill tells whether offered load actually fills the
            // --coalesce target or the window keeps flushing partials.
            auto fill = s.histograms.find("coolair_serve_lane_fill");
            if (fill != s.histograms.end() && fill->second.count > 0) {
                const double parked =
                    metricOr(s, "coolair_serve_parked", 0);
                std::printf("lane fill mean %.2f  p50 %.1f  p95 %.1f  "
                            "(%.0f batches, %.0f parked)\n",
                            metricOr(s, "coolair_serve_lane_fill_sum",
                                     0) /
                                fill->second.count,
                            quantile(fill->second, 0.50),
                            quantile(fill->second, 0.95),
                            fill->second.count, parked);
            }
            auto hist = s.histograms.find("coolair_serve_latency_seconds");
            if (hist != s.histograms.end() && hist->second.count > 0)
                std::printf("latency p50 %.4fs  p95 %.4fs  p99 %.4fs  "
                            "(%.0f samples)\n",
                            quantile(hist->second, 0.50),
                            quantile(hist->second, 0.95),
                            quantile(hist->second, 0.99),
                            hist->second.count);
            if (!rates.empty())
                std::printf("specs/s %s\n", sparkline(rates).c_str());
            std::fflush(stdout);

            if (iterations == 0 || tick + 1 < iterations)
                std::this_thread::sleep_for(
                    std::chrono::duration<double>(interval));
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "coolair_top: %s\n", e.what());
        return 1;
    }
    return 0;
}
