/**
 * @file
 * Parasol day explorer: simulate one day of a chosen site and system and
 * dump a minute-resolution CSV trace (outside temperature, inlet
 * min/max, cooling mode, fan/compressor speeds, power draws, disk
 * temperatures) — the data behind plots like the paper's Figures 6/7.
 *
 * Usage:
 *   parasol_day [site 0-4] [day-of-year] [system] > day.csv
 *     site:   0=Newark 1=Chad 2=Santiago 3=Iceland 4=Singapore
 *     system: any spec system key (baseline | allnd | variation | ...)
 *
 * Example:  ./build/examples/parasol_day 0 166 allnd > newark_june.csv
 */

#include <climits>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <stdexcept>

#include "environment/location.hpp"
#include "sim/scenario.hpp"
#include "sim/spec_io.hpp"
#include "sim/trace_csv.hpp"
#include "util/parse.hpp"

using namespace coolair;

namespace {

/** Strict argv integer: "8x" is an error, not 8. */
int
argInt(const char *arg, const char *what)
{
    long long v = 0;
    if (!util::parseInt(arg, v) || v < INT_MIN || v > INT_MAX) {
        std::fprintf(stderr, "parasol_day: bad %s: '%s'\n", what, arg);
        std::exit(1);
    }
    return int(v);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    int site_idx = argc > 1 ? argInt(argv[1], "site index") : 0;
    int day = argc > 2 ? argInt(argv[2], "day of year") : 166;
    const char *system = argc > 3 ? argv[3] : "allnd";

    if (site_idx < 0 || site_idx >= environment::kNamedSiteCount) {
        std::fprintf(stderr, "site must be 0..%d\n",
                     environment::kNamedSiteCount - 1);
        return 1;
    }

    sim::ExperimentSpec spec;
    spec.location = environment::namedLocation(
        environment::allNamedSites()[size_t(site_idx)]);
    spec.runKind = sim::RunKind::SingleDay;
    spec.day = ((day % 365) + 365) % 365;
    try {
        sim::applySpecAssignment(spec, std::string("system=") + system);
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }

    std::fprintf(stderr, "simulating %s day %d under %s...\n",
                 spec.location.name.c_str(), spec.day,
                 sim::systemName(spec.system));

    auto scenario = sim::ScenarioBuilder(spec)
                        .withTraceSink(sim::makeCsvTraceSink(std::cout))
                        .build();
    sim::writeTraceCsvHeader(std::cout);
    sim::Summary s = scenario->run().system;

    std::fprintf(stderr,
                 "day summary: worst range %.1f C, avg violation %.2f C, "
                 "IT %.1f kWh, cooling %.1f kWh, PUE %.3f\n",
                 s.maxWorstDailyRangeC, s.avgViolationC, s.itKwh,
                 s.coolingKwh, s.pue);
    return 0;
}
