/**
 * @file
 * Parasol day explorer: simulate one day of a chosen site and system and
 * dump a minute-resolution CSV trace (outside temperature, inlet
 * min/max, cooling mode, fan/compressor speeds, power draws, disk
 * temperatures) — the data behind plots like the paper's Figures 6/7.
 *
 * Usage:
 *   parasol_day [site 0-4] [day-of-year] [system] > day.csv
 *     site:   0=Newark 1=Chad 2=Santiago 3=Iceland 4=Singapore
 *     system: baseline | allnd | variation | energy
 *
 * Example:  ./build/examples/parasol_day 0 166 allnd > newark_june.csv
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>

#include "environment/location.hpp"
#include "sim/engine.hpp"
#include "sim/experiment.hpp"
#include "util/table.hpp"
#include "workload/cluster.hpp"
#include "workload/trace_gen.hpp"

using namespace coolair;

int
main(int argc, char **argv)
{
    int site_idx = argc > 1 ? std::atoi(argv[1]) : 0;
    int day = argc > 2 ? std::atoi(argv[2]) : 166;
    const char *system = argc > 3 ? argv[3] : "allnd";

    if (site_idx < 0 || site_idx > 4) {
        std::fprintf(stderr, "site must be 0..4\n");
        return 1;
    }
    day = ((day % 365) + 365) % 365;

    environment::Location loc = environment::namedLocation(
        environment::allNamedSites()[size_t(site_idx)]);
    environment::Climate climate = loc.makeClimate(7);
    environment::Forecaster forecaster(climate);

    plant::PlantConfig pc = plant::PlantConfig::smoothParasol();
    plant::Plant plant(pc, 7);
    workload::ClusterSim cluster({}, workload::facebookTrace({}));

    std::unique_ptr<sim::Controller> controller;
    if (std::strcmp(system, "baseline") == 0) {
        controller = std::make_unique<sim::BaselineController>();
    } else {
        core::Version version = core::Version::AllNd;
        if (std::strcmp(system, "variation") == 0)
            version = core::Version::Variation;
        else if (std::strcmp(system, "energy") == 0)
            version = core::Version::Energy;
        core::CoolAirConfig config = core::CoolAirConfig::forVersion(
            version, cooling::RegimeMenu::smooth());
        controller = std::make_unique<sim::CoolAirController>(
            config, sim::sharedBundle(), &forecaster);
    }

    std::fprintf(stderr, "simulating %s day %d under %s...\n",
                 loc.name.c_str(), day, controller->name());

    util::CsvWriter csv(
        std::cout,
        {"minute", "outside_c", "inlet_min_c", "inlet_max_c", "mode",
         "fc_fan", "compressor", "it_w", "cooling_w", "disk_min_c",
         "disk_max_c", "utilization"});

    sim::MetricsCollector metrics({}, pc.numPods);
    sim::Engine engine(plant, cluster, *controller, climate);
    engine.setMetrics(&metrics);
    int minute = 0;
    engine.setTraceSink([&](const sim::TraceRow &r) {
        csv.writeRow(std::vector<std::string>{
            std::to_string(minute++), util::TextTable::fmt(r.outsideC, 2),
            util::TextTable::fmt(r.inletMinC, 2),
            util::TextTable::fmt(r.inletMaxC, 2),
            cooling::modeName(r.mode),
            util::TextTable::fmt(r.fcFanSpeed, 2),
            util::TextTable::fmt(r.compressorSpeed, 2),
            util::TextTable::fmt(r.itPowerW, 0),
            util::TextTable::fmt(r.coolingPowerW, 0),
            util::TextTable::fmt(r.diskMinC, 2),
            util::TextTable::fmt(r.diskMaxC, 2),
            util::TextTable::fmt(r.dcUtilization, 3)});
    });
    engine.runDay(day);

    sim::Summary s = metrics.summary();
    std::fprintf(stderr,
                 "day summary: worst range %.1f C, avg violation %.2f C, "
                 "IT %.1f kWh, cooling %.1f kWh, PUE %.3f\n",
                 s.maxWorstDailyRangeC, s.avgViolationC, s.itKwh,
                 s.coolingKwh, s.pue);
    return 0;
}
