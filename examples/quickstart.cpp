/**
 * @file
 * Quickstart: the smallest end-to-end CoolAir session.
 *
 * Learns the cooling models from the Parasol plant simulator, then runs
 * one simulated winter day and one summer day at Newark twice — once
 * under the baseline (extended TKS) controller and once under CoolAir
 * All-ND — and prints the temperature/variation/energy outcomes side by
 * side.  Each run is a declarative ExperimentSpec handed to
 * sim::runExperiment; the same spec could be saved to a file and
 * replayed with examples/experiment_cli.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <iostream>

#include "environment/location.hpp"
#include "sim/experiment.hpp"

using namespace coolair;

int
main()
{
    std::cout << "CoolAir quickstart: a winter day and a summer day in "
                 "Newark\n";
    std::cout << "Learning cooling models from the plant simulator...\n";
    const model::LearnedBundle &bundle = sim::sharedBundle();
    std::printf("  fitted %zu temperature models, train RMSE %.2f C\n",
                bundle.fittedTempModels, bundle.tempTrainRmse);

    sim::ExperimentSpec spec;
    spec.location =
        environment::namedLocation(environment::NamedSite::Newark);
    spec.style = cooling::ActuatorStyle::Smooth;
    spec.runKind = sim::RunKind::SingleDay;

    struct DayCase
    {
        const char *name;
        int day;
    };
    for (DayCase dc : {DayCase{"winter (late Jan)", 25},
                       DayCase{"summer (early Jul)", 186}}) {
        spec.day = dc.day;

        // Baseline: extended TKS, 30 C setpoint, humidity control.
        spec.system = sim::SystemId::Baseline;
        sim::Summary base = sim::runExperiment(spec).system;

        // CoolAir All-ND on the smooth cooling infrastructure.
        spec.system = sim::SystemId::AllNd;
        sim::Summary ca = sim::runExperiment(spec).system;

        std::printf("\n--- %s ---\n", dc.name);
        std::printf("%-28s %12s %12s\n", "metric", "Baseline", "All-ND");
        std::printf("%-28s %12.2f %12.2f\n", "avg violation >30C [C]",
                    base.avgViolationC, ca.avgViolationC);
        std::printf("%-28s %12.2f %12.2f\n", "worst daily range [C]",
                    base.maxWorstDailyRangeC, ca.maxWorstDailyRangeC);
        std::printf("%-28s %12.2f %12.2f\n", "avg max inlet [C]",
                    base.avgMaxInletC, ca.avgMaxInletC);
        std::printf("%-28s %12.3f %12.3f\n", "PUE", base.pue, ca.pue);
        std::printf("%-28s %12.2f %12.2f\n", "cooling energy [kWh]",
                    base.coolingKwh, ca.coolingKwh);
        std::printf("%-28s %12.2f %12.2f\n", "IT energy [kWh]",
                    base.itKwh, ca.itKwh);
    }

    std::cout << "\nCoolAir holds inlet temperatures inside a daily band "
                 "chosen from the forecast\n(winter: tighter variation), "
                 "and spends cooling energy only when the band\ndemands "
                 "it (summer: lower PUE); the baseline only reacts to its "
                 "fixed setpoint.\n";
    return 0;
}
