/**
 * @file
 * Quickstart: the smallest end-to-end CoolAir session.
 *
 * Learns the cooling models from the Parasol plant simulator, then runs
 * one simulated summer day at Newark twice — once under the baseline
 * (extended TKS) controller and once under CoolAir All-ND — and prints
 * the temperature/variation/energy outcomes side by side.
 *
 * Build & run:  ./build/examples/quickstart
 */

#include <cstdio>
#include <iostream>

#include "environment/location.hpp"
#include "sim/engine.hpp"
#include "sim/experiment.hpp"
#include "workload/cluster.hpp"
#include "workload/trace_gen.hpp"

using namespace coolair;

namespace {

sim::Summary
runOneDay(sim::Controller &controller, const environment::Climate &climate,
          cooling::ActuatorStyle style, int day)
{
    plant::PlantConfig pc = style == cooling::ActuatorStyle::Abrupt
                                ? plant::PlantConfig::parasol()
                                : plant::PlantConfig::smoothParasol();
    plant::Plant plant(pc, 7);

    workload::ClusterConfig cc;
    workload::ClusterSim cluster(cc, workload::facebookTrace({}));

    sim::MetricsCollector metrics({}, pc.numPods);
    sim::Engine engine(plant, cluster, controller, climate);
    engine.setMetrics(&metrics);
    engine.runDay(day);
    return metrics.summary();
}

} // anonymous namespace

int
main()
{
    std::cout << "CoolAir quickstart: a winter day and a summer day in "
                 "Newark\n";
    std::cout << "Learning cooling models from the plant simulator...\n";
    const model::LearnedBundle &bundle = sim::sharedBundle();
    std::printf("  fitted %zu temperature models, train RMSE %.2f C\n",
                bundle.fittedTempModels, bundle.tempTrainRmse);

    environment::Location newark =
        environment::namedLocation(environment::NamedSite::Newark);
    environment::Climate climate = newark.makeClimate(7);

    struct DayCase
    {
        const char *name;
        int day;
    };
    for (DayCase dc : {DayCase{"winter (late Jan)", 25},
                       DayCase{"summer (early Jul)", 186}}) {
        environment::Forecaster forecaster(climate);

        // Baseline: extended TKS, 30 C setpoint, humidity control.
        sim::BaselineController baseline;
        sim::Summary base =
            runOneDay(baseline, climate, cooling::ActuatorStyle::Smooth,
                      dc.day);

        // CoolAir All-ND on the smooth cooling infrastructure.
        core::CoolAirConfig config = core::CoolAirConfig::forVersion(
            core::Version::AllNd, cooling::RegimeMenu::smooth());
        sim::CoolAirController coolair(config, bundle, &forecaster,
                                       "All-ND");
        sim::Summary ca = runOneDay(coolair, climate,
                                    cooling::ActuatorStyle::Smooth,
                                    dc.day);

        std::printf("\n--- %s ---\n", dc.name);
        std::printf("%-28s %12s %12s\n", "metric", "Baseline", "All-ND");
        std::printf("%-28s %12.2f %12.2f\n", "avg violation >30C [C]",
                    base.avgViolationC, ca.avgViolationC);
        std::printf("%-28s %12.2f %12.2f\n", "worst daily range [C]",
                    base.maxWorstDailyRangeC, ca.maxWorstDailyRangeC);
        std::printf("%-28s %12.2f %12.2f\n", "avg max inlet [C]",
                    base.avgMaxInletC, ca.avgMaxInletC);
        std::printf("%-28s %12.3f %12.3f\n", "PUE", base.pue, ca.pue);
        std::printf("%-28s %12.2f %12.2f\n", "cooling energy [kWh]",
                    base.coolingKwh, ca.coolingKwh);
        std::printf("%-28s %12.2f %12.2f\n", "IT energy [kWh]",
                    base.itKwh, ca.itKwh);
    }

    std::cout << "\nCoolAir holds inlet temperatures inside a daily band "
                 "chosen from the forecast\n(winter: tighter variation), "
                 "and spends cooling energy only when the band\ndemands "
                 "it (summer: lower PUE); the baseline only reacts to its "
                 "fixed setpoint.\n";
    return 0;
}
