/**
 * @file
 * Command-line client for the coolair_serve daemon.
 *
 * Usage:
 *   coolair_client (--socket <path> | --port <port>) <command...>
 *     --spec <file>        read a spec file and send it as one RUN
 *                          (newlines become ';', comments dropped)
 *
 * The remaining arguments form one protocol request line, e.g.:
 *   coolair_client --socket /tmp/coolair.sock PING
 *   coolair_client --socket /tmp/coolair.sock RUN "site=newark; weeks=1"
 *   coolair_client --port 7411 STATS
 *   coolair_client --port 7411 SHUTDOWN
 *   coolair_client --socket /tmp/coolair.sock --spec fig8.spec
 *
 * Prints the response status line to stderr and any RESULT/STATS
 * payload to stdout; exits non-zero on ERR or transport failure.
 */

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <string>

#include "serve/client.hpp"
#include "util/parse.hpp"

using namespace coolair;

namespace {

[[noreturn]] void
usage(const char *msg)
{
    std::fprintf(stderr, "error: %s\n(see the header comment in "
                         "examples/coolair_client.cpp for usage)\n",
                 msg);
    std::exit(2);
}

/** A spec file as one protocol spec line: newlines -> ';', blank and
    full-line-comment lines dropped. */
std::string
specLineFromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        usage(("cannot open spec file: " + path).c_str());
    std::string line, out;
    while (std::getline(in, line)) {
        const size_t b = line.find_first_not_of(" \t\r");
        if (b == std::string::npos || line[b] == '#')
            continue;
        if (!out.empty())
            out += "; ";
        out += line;
    }
    if (out.empty())
        usage(("spec file has no assignments: " + path).c_str());
    return out;
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    std::string socket_path;
    int port = -1;
    std::string command;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(("missing value for " + arg).c_str());
            return argv[++i];
        };
        if (arg == "--socket") {
            socket_path = next();
        } else if (arg == "--port") {
            long long p = 0;
            const std::string text = next();
            if (!util::parseInt(text, p) || p < 1 || p > 65535)
                usage(("bad port: '" + text + "'").c_str());
            port = int(p);
        } else if (arg == "--spec") {
            command = "RUN " + specLineFromFile(next());
        } else {
            if (!command.empty())
                command += " ";
            command += arg;
        }
    }
    if (socket_path.empty() && port < 0)
        usage("need --socket <path> or --port <port>");
    if (command.empty())
        usage("need a command (PING, RUN <spec>, STATS, ...)");

    try {
        serve::Client client = socket_path.empty()
                                   ? serve::Client::connectTcp(port)
                                   : serve::Client::connectUnix(socket_path);
        serve::Client::Response r = client.request(command);
        if (!r.ok) {
            std::fprintf(stderr, "ERR %s\n", r.error.c_str());
            return 1;
        }
        std::fprintf(stderr, "%s\n", r.status.c_str());
        if (!r.payload.empty())
            std::fputs(r.payload.c_str(), stdout);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "coolair_client: %s\n", e.what());
        return 1;
    }
    return 0;
}
