/**
 * @file
 * Command-line experiment runner: any experiment the scenario layer can
 * assemble, described entirely by a spec (§5.1 year runs, single days,
 * day ranges, trace dumps), plus learned-model caching on disk so
 * repeated invocations skip the learning campaign.
 *
 * Usage:
 *   experiment_cli [options] [key=value ...]
 *     --spec <file>           load a spec file (see examples/specs/)
 *     key=value               override any spec key (applied in order)
 *     --list-systems          print the system keys and exit
 *     --list-locations        print the named-site keys and exit
 *     --model-cache <path>    save/load the learned bundle
 *     --reliability           also print the AFR multipliers
 *     --cache-dir <dir>       = cache_dir=<dir>: persistent result
 *                             store; a repeat invocation with the same
 *                             spec serves the result from disk
 *     --cache-stats           print the result store's counters and
 *                             on-disk footprint after the run
 *     --cache-verify          on a cache hit, re-run the experiment
 *                             uncached and assert the result is
 *                             bit-identical to the cached one (exit 1
 *                             and count a verify failure if not)
 *
 *   Legacy convenience flags (equivalent to the assignments shown):
 *     --site <s>        = site=<s>
 *     --system <s>      = system=<s>
 *     --workload <w>    = workload=<w>
 *     --weeks <n>       = weeks=<n>
 *     --max-temp <C>    = max_temp=<C>
 *     --forecast-bias <C> = forecast_bias=<C>
 *     --report <path>   = report_json=<path>   (RunReport JSON manifest)
 *     --trace-out <path> = trace_json=<path>   (Chrome trace-event JSON,
 *                                               loadable in Perfetto)
 *
 * Examples:
 *   experiment_cli --spec examples/specs/fig8_newark_allnd.spec
 *   experiment_cli --site iceland --system allnd --model-cache /tmp/m.txt
 *   experiment_cli system=energydef weeks=12 seed=11
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>

#include "environment/location.hpp"
#include "model/serialize.hpp"
#include "obs/stats.hpp"
#include "reliability/disk_reliability.hpp"
#include "sim/experiment.hpp"
#include "sim/result_cache.hpp"
#include "sim/spec_io.hpp"
#include "store/result_store.hpp"

using namespace coolair;

namespace {

[[noreturn]] void
usage(const char *msg)
{
    std::fprintf(stderr, "error: %s\n(see the header comment in "
                         "examples/experiment_cli.cpp for usage)\n",
                 msg);
    std::exit(2);
}

void
listSystems()
{
    std::printf("%-12s %-16s %s\n", "key", "name", "defers jobs");
    for (sim::SystemId id : sim::allSystemIds())
        std::printf("%-12s %-16s %s\n", sim::systemKey(id),
                    sim::systemName(id),
                    sim::systemIsDeferrable(id) ? "yes" : "no");
}

void
listLocations()
{
    std::printf("%-12s %-10s %10s %10s\n", "key", "name", "lat", "lon");
    for (environment::NamedSite site : environment::allNamedSites()) {
        environment::Location loc = environment::namedLocation(site);
        std::printf("%-12s %-10s %10.2f %10.2f\n", sim::siteKey(site),
                    environment::siteName(site), loc.latitude,
                    loc.longitude);
    }
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        usage(("cannot open spec file: " + path).c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    sim::ExperimentSpec spec;
    spec.location = environment::namedLocation(
        environment::NamedSite::Newark);
    spec.system = sim::SystemId::AllNd;
    bool want_reliability = false;
    bool cache_stats = false;
    bool cache_verify = false;
    std::string model_cache;

    try {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    usage(("missing value for " + arg).c_str());
                return argv[++i];
            };
            if (arg == "--spec") {
                sim::applySpecText(spec, readFile(next()));
            } else if (arg == "--list-systems") {
                listSystems();
                return 0;
            } else if (arg == "--list-locations") {
                listLocations();
                return 0;
            } else if (arg == "--site") {
                sim::applySpecAssignment(spec, "site=" + next());
            } else if (arg == "--system") {
                sim::applySpecAssignment(spec, "system=" + next());
            } else if (arg == "--workload") {
                sim::applySpecAssignment(spec, "workload=" + next());
            } else if (arg == "--weeks") {
                sim::applySpecAssignment(spec, "weeks=" + next());
            } else if (arg == "--max-temp") {
                sim::applySpecAssignment(spec, "max_temp=" + next());
            } else if (arg == "--forecast-bias") {
                sim::applySpecAssignment(spec, "forecast_bias=" + next());
            } else if (arg == "--report") {
                sim::applySpecAssignment(spec, "report_json=" + next());
            } else if (arg == "--trace-out") {
                sim::applySpecAssignment(spec, "trace_json=" + next());
            } else if (arg == "--model-cache") {
                model_cache = next();
            } else if (arg == "--cache-dir") {
                sim::applySpecAssignment(spec, "cache_dir=" + next());
            } else if (arg == "--cache-stats") {
                cache_stats = true;
            } else if (arg == "--cache-verify") {
                cache_verify = true;
            } else if (arg == "--reliability") {
                want_reliability = true;
            } else if (arg.find('=') != std::string::npos &&
                       arg.rfind("--", 0) != 0) {
                sim::applySpecAssignment(spec, arg);
            } else {
                usage(("unknown option: " + arg).c_str());
            }
        }
    } catch (const std::invalid_argument &e) {
        usage(e.what());
    }

    // Warm the process-wide bundle from the cache if present; write it
    // back afterwards so the next invocation skips the campaign.
    // (The scenario layer uses the shared bundle internally; the cache
    // demonstrates the save/load path and validates the file.)
    if (!model_cache.empty()) {
        std::ifstream probe(model_cache);
        if (probe.good()) {
            model::LearnedBundle loaded =
                model::loadBundleFromFile(model_cache);
            std::fprintf(stderr,
                         "loaded %zu temperature models from %s\n",
                         loaded.fittedTempModels, model_cache.c_str());
        }
    }

    std::fprintf(stderr, "running this spec:\n%s",
                 sim::formatSpec(spec).c_str());
    // The CLI owns its result store (instead of letting runExperiment
    // open one internally) so it can report hit/miss, verify hits, and
    // print the counters the run accumulated.
    std::optional<store::ResultStore> st;
    bool from_cache = false;
    sim::ExperimentResult r;
    try {
        if (sim::resultCacheUsable(spec)) {
            st.emplace(spec.cacheDirPath, sim::kResultCacheSalt,
                       sim::kResultFormatVersion);
            r = sim::runExperimentCached(spec, *st, &from_cache);
        } else {
            r = sim::runExperiment(spec);
        }
    } catch (const std::exception &e) {
        usage(e.what());
    }
    if (st && from_cache)
        std::fprintf(stderr, "result served from cache: %s\n",
                     st->entryPath(sim::resultCacheId(spec)).c_str());

    if (cache_verify && st && from_cache) {
        // Re-run the sampled hit with the cache off and demand the
        // result reproduce the cached one bit for bit.
        sim::ExperimentSpec fresh = spec;
        fresh.cacheDirPath.clear();
        fresh.reportJsonPath.clear();
        sim::ExperimentResult rerun = sim::runExperiment(fresh);
        if (sim::formatResult(rerun) != sim::formatResult(r)) {
            st->noteVerifyFailure();
            std::fprintf(stderr,
                         "cache-verify FAILED: re-run did not reproduce "
                         "the cached result (stale salt? bump "
                         "kResultCacheSalt)\n");
            return 1;
        }
        std::fprintf(stderr, "cache-verify ok: re-run reproduced the "
                             "cached result bit for bit\n");
    }

    if (st && obs::enabled())
        st->addStats(obs::registry());

    if (!model_cache.empty())
        model::saveBundleToFile(sim::sharedBundle(), model_cache);

    std::printf("site                     %s\n", spec.location.name.c_str());
    std::printf("system                   %s\n",
                sim::systemName(spec.system));
    std::printf("avg violation >%g C      %.3f C\n", spec.maxTempC,
                r.system.avgViolationC);
    std::printf("avg worst daily range    %.2f C\n",
                r.system.avgWorstDailyRangeC);
    std::printf("max worst daily range    %.2f C (outside: %.2f C)\n",
                r.system.maxWorstDailyRangeC,
                r.outside.maxWorstDailyRangeC);
    std::printf("PUE                      %.3f\n", r.system.pue);
    std::printf("IT / cooling energy      %.1f / %.1f kWh\n",
                r.system.itKwh, r.system.coolingKwh);
    std::printf("humidity violations      %.1f %% of samples\n",
                100.0 * r.system.humidityViolationFrac);

    if (want_reliability) {
        reliability::DiskReliabilityModel model;
        auto rep = model.assess(r.system);
        std::printf("AFR multiplier           %.2fx (temp %.2fx, "
                    "variation %.2fx)\n",
                    rep.afrMultiplier, rep.temperatureFactor,
                    rep.variationFactor);
    }

    if (cache_stats) {
        if (!st) {
            std::printf("cache                    disabled "
                        "(no cache_dir, or trace outputs requested)\n");
        } else {
            const store::StoreStats s = st->stats();
            const store::ResultStore::DiskUsage du = st->diskUsage();
            std::printf("cache dir                %s\n", st->dir().c_str());
            std::printf("cache lookups            %lld (%lld hits, "
                        "%lld misses)\n",
                        (long long)s.lookups, (long long)s.hits,
                        (long long)s.misses);
            std::printf("cache stores             %lld (%lld failed)\n",
                        (long long)s.stores, (long long)s.storeFailures);
            std::printf("cache dropped entries    %lld stale, "
                        "%lld corrupt, %lld collided\n",
                        (long long)s.staleEntries, (long long)s.corruptEntries,
                        (long long)s.collisions);
            std::printf("cache verify failures    %lld\n",
                        (long long)s.verifyFailures);
            std::printf("cache bytes read/written %lld / %lld\n",
                        (long long)s.bytesRead, (long long)s.bytesWritten);
            std::printf("cache on disk            %llu entries, "
                        "%llu bytes\n",
                        (unsigned long long)du.entries,
                        (unsigned long long)du.bytes);
        }
    }
    return 0;
}
