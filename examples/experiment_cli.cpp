/**
 * @file
 * Command-line experiment runner: the §5.1 year protocol with every knob
 * on the command line, plus learned-model caching on disk so repeated
 * invocations skip the learning campaign.
 *
 * Usage:
 *   experiment_cli [options]
 *     --site <newark|chad|santiago|iceland|singapore>   (default newark)
 *     --system <baseline|temperature|energy|variation|allnd|alldef|
 *               energydef|varlow|varhigh>               (default allnd)
 *     --workload <facebook|nutch|profile>               (default facebook)
 *     --weeks <n>                                       (default 52)
 *     --max-temp <C>                                    (default 30)
 *     --forecast-bias <C>                               (default 0)
 *     --model-cache <path>    save/load the learned bundle
 *     --reliability           also print the AFR multipliers
 *
 * Example:
 *   experiment_cli --site iceland --system allnd --model-cache /tmp/m.txt
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "model/serialize.hpp"
#include "reliability/disk_reliability.hpp"
#include "sim/experiment.hpp"

using namespace coolair;

namespace {

[[noreturn]] void
usage(const char *msg)
{
    std::fprintf(stderr, "error: %s\n(see the header comment in "
                         "examples/experiment_cli.cpp for usage)\n",
                 msg);
    std::exit(2);
}

environment::NamedSite
parseSite(const std::string &s)
{
    for (auto site : environment::allNamedSites()) {
        std::string name = environment::siteName(site);
        for (auto &ch : name)
            ch = char(std::tolower(ch));
        if (name == s)
            return site;
    }
    usage(("unknown site: " + s).c_str());
}

sim::SystemId
parseSystem(const std::string &s)
{
    if (s == "baseline") return sim::SystemId::Baseline;
    if (s == "temperature") return sim::SystemId::Temperature;
    if (s == "energy") return sim::SystemId::Energy;
    if (s == "variation") return sim::SystemId::Variation;
    if (s == "allnd") return sim::SystemId::AllNd;
    if (s == "alldef") return sim::SystemId::AllDef;
    if (s == "energydef") return sim::SystemId::EnergyDef;
    if (s == "varlow") return sim::SystemId::VarLowRecirc;
    if (s == "varhigh") return sim::SystemId::VarHighRecirc;
    usage(("unknown system: " + s).c_str());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    sim::ExperimentSpec spec;
    spec.location = environment::namedLocation(
        environment::NamedSite::Newark);
    spec.system = sim::SystemId::AllNd;
    bool want_reliability = false;
    std::string model_cache;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(("missing value for " + arg).c_str());
            return argv[++i];
        };
        if (arg == "--site") {
            spec.location = environment::namedLocation(parseSite(next()));
        } else if (arg == "--system") {
            spec.system = parseSystem(next());
        } else if (arg == "--workload") {
            std::string w = next();
            if (w == "facebook")
                spec.workload = sim::WorkloadKind::Facebook;
            else if (w == "nutch")
                spec.workload = sim::WorkloadKind::Nutch;
            else if (w == "profile")
                spec.workload = sim::WorkloadKind::FacebookProfile;
            else
                usage(("unknown workload: " + w).c_str());
        } else if (arg == "--weeks") {
            spec.weeks = std::atoi(next().c_str());
            if (spec.weeks <= 0)
                usage("--weeks must be positive");
        } else if (arg == "--max-temp") {
            spec.maxTempC = std::atof(next().c_str());
        } else if (arg == "--forecast-bias") {
            spec.forecastError.biasC = std::atof(next().c_str());
        } else if (arg == "--model-cache") {
            model_cache = next();
        } else if (arg == "--reliability") {
            want_reliability = true;
        } else {
            usage(("unknown option: " + arg).c_str());
        }
    }

    // Warm the process-wide bundle from the cache if present; write it
    // back afterwards so the next invocation skips the campaign.
    // (runYearExperiment uses the shared bundle internally; the cache
    // demonstrates the save/load path and validates the file.)
    if (!model_cache.empty()) {
        std::ifstream probe(model_cache);
        if (probe.good()) {
            model::LearnedBundle loaded =
                model::loadBundleFromFile(model_cache);
            std::fprintf(stderr,
                         "loaded %zu temperature models from %s\n",
                         loaded.fittedTempModels, model_cache.c_str());
        }
    }

    std::fprintf(stderr, "running %s at %s, %d weeks...\n",
                 sim::systemName(spec.system), spec.location.name.c_str(),
                 spec.weeks);
    sim::ExperimentResult r = sim::runYearExperiment(spec);

    if (!model_cache.empty())
        model::saveBundleToFile(sim::sharedBundle(), model_cache);

    std::printf("site                     %s\n", spec.location.name.c_str());
    std::printf("system                   %s\n",
                sim::systemName(spec.system));
    std::printf("avg violation >%g C      %.3f C\n", spec.maxTempC,
                r.system.avgViolationC);
    std::printf("avg worst daily range    %.2f C\n",
                r.system.avgWorstDailyRangeC);
    std::printf("max worst daily range    %.2f C (outside: %.2f C)\n",
                r.system.maxWorstDailyRangeC,
                r.outside.maxWorstDailyRangeC);
    std::printf("PUE                      %.3f\n", r.system.pue);
    std::printf("IT / cooling energy      %.1f / %.1f kWh\n",
                r.system.itKwh, r.system.coolingKwh);
    std::printf("humidity violations      %.1f %% of samples\n",
                100.0 * r.system.humidityViolationFrac);

    if (want_reliability) {
        reliability::DiskReliabilityModel model;
        auto rep = model.assess(r.system);
        std::printf("AFR multiplier           %.2fx (temp %.2fx, "
                    "variation %.2fx)\n",
                    rep.afrMultiplier, rep.temperatureFactor,
                    rep.variationFactor);
    }
    return 0;
}
