/**
 * @file
 * Command-line experiment runner: any experiment the scenario layer can
 * assemble, described entirely by a spec (§5.1 year runs, single days,
 * day ranges, trace dumps), plus learned-model caching on disk so
 * repeated invocations skip the learning campaign.
 *
 * Usage:
 *   experiment_cli [options] [key=value ...]
 *     --spec <file>           load a spec file (see examples/specs/)
 *     key=value               override any spec key (applied in order)
 *     --list-systems          print the system keys and exit
 *     --list-locations        print the named-site keys and exit
 *     --model-cache <path>    save/load the learned bundle
 *     --reliability           also print the AFR multipliers
 *
 *   Legacy convenience flags (equivalent to the assignments shown):
 *     --site <s>        = site=<s>
 *     --system <s>      = system=<s>
 *     --workload <w>    = workload=<w>
 *     --weeks <n>       = weeks=<n>
 *     --max-temp <C>    = max_temp=<C>
 *     --forecast-bias <C> = forecast_bias=<C>
 *     --report <path>   = report_json=<path>   (RunReport JSON manifest)
 *     --trace-out <path> = trace_json=<path>   (Chrome trace-event JSON,
 *                                               loadable in Perfetto)
 *
 * Examples:
 *   experiment_cli --spec examples/specs/fig8_newark_allnd.spec
 *   experiment_cli --site iceland --system allnd --model-cache /tmp/m.txt
 *   experiment_cli system=energydef weeks=12 seed=11
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "environment/location.hpp"
#include "model/serialize.hpp"
#include "reliability/disk_reliability.hpp"
#include "sim/experiment.hpp"
#include "sim/spec_io.hpp"

using namespace coolair;

namespace {

[[noreturn]] void
usage(const char *msg)
{
    std::fprintf(stderr, "error: %s\n(see the header comment in "
                         "examples/experiment_cli.cpp for usage)\n",
                 msg);
    std::exit(2);
}

void
listSystems()
{
    std::printf("%-12s %-16s %s\n", "key", "name", "defers jobs");
    for (sim::SystemId id : sim::allSystemIds())
        std::printf("%-12s %-16s %s\n", sim::systemKey(id),
                    sim::systemName(id),
                    sim::systemIsDeferrable(id) ? "yes" : "no");
}

void
listLocations()
{
    std::printf("%-12s %-10s %10s %10s\n", "key", "name", "lat", "lon");
    for (environment::NamedSite site : environment::allNamedSites()) {
        environment::Location loc = environment::namedLocation(site);
        std::printf("%-12s %-10s %10.2f %10.2f\n", sim::siteKey(site),
                    environment::siteName(site), loc.latitude,
                    loc.longitude);
    }
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        usage(("cannot open spec file: " + path).c_str());
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    sim::ExperimentSpec spec;
    spec.location = environment::namedLocation(
        environment::NamedSite::Newark);
    spec.system = sim::SystemId::AllNd;
    bool want_reliability = false;
    std::string model_cache;

    try {
        for (int i = 1; i < argc; ++i) {
            std::string arg = argv[i];
            auto next = [&]() -> std::string {
                if (i + 1 >= argc)
                    usage(("missing value for " + arg).c_str());
                return argv[++i];
            };
            if (arg == "--spec") {
                sim::applySpecText(spec, readFile(next()));
            } else if (arg == "--list-systems") {
                listSystems();
                return 0;
            } else if (arg == "--list-locations") {
                listLocations();
                return 0;
            } else if (arg == "--site") {
                sim::applySpecAssignment(spec, "site=" + next());
            } else if (arg == "--system") {
                sim::applySpecAssignment(spec, "system=" + next());
            } else if (arg == "--workload") {
                sim::applySpecAssignment(spec, "workload=" + next());
            } else if (arg == "--weeks") {
                sim::applySpecAssignment(spec, "weeks=" + next());
            } else if (arg == "--max-temp") {
                sim::applySpecAssignment(spec, "max_temp=" + next());
            } else if (arg == "--forecast-bias") {
                sim::applySpecAssignment(spec, "forecast_bias=" + next());
            } else if (arg == "--report") {
                sim::applySpecAssignment(spec, "report_json=" + next());
            } else if (arg == "--trace-out") {
                sim::applySpecAssignment(spec, "trace_json=" + next());
            } else if (arg == "--model-cache") {
                model_cache = next();
            } else if (arg == "--reliability") {
                want_reliability = true;
            } else if (arg.find('=') != std::string::npos &&
                       arg.rfind("--", 0) != 0) {
                sim::applySpecAssignment(spec, arg);
            } else {
                usage(("unknown option: " + arg).c_str());
            }
        }
    } catch (const std::invalid_argument &e) {
        usage(e.what());
    }

    // Warm the process-wide bundle from the cache if present; write it
    // back afterwards so the next invocation skips the campaign.
    // (The scenario layer uses the shared bundle internally; the cache
    // demonstrates the save/load path and validates the file.)
    if (!model_cache.empty()) {
        std::ifstream probe(model_cache);
        if (probe.good()) {
            model::LearnedBundle loaded =
                model::loadBundleFromFile(model_cache);
            std::fprintf(stderr,
                         "loaded %zu temperature models from %s\n",
                         loaded.fittedTempModels, model_cache.c_str());
        }
    }

    std::fprintf(stderr, "running this spec:\n%s",
                 sim::formatSpec(spec).c_str());
    sim::ExperimentResult r;
    try {
        r = sim::runExperiment(spec);
    } catch (const std::exception &e) {
        usage(e.what());
    }

    if (!model_cache.empty())
        model::saveBundleToFile(sim::sharedBundle(), model_cache);

    std::printf("site                     %s\n", spec.location.name.c_str());
    std::printf("system                   %s\n",
                sim::systemName(spec.system));
    std::printf("avg violation >%g C      %.3f C\n", spec.maxTempC,
                r.system.avgViolationC);
    std::printf("avg worst daily range    %.2f C\n",
                r.system.avgWorstDailyRangeC);
    std::printf("max worst daily range    %.2f C (outside: %.2f C)\n",
                r.system.maxWorstDailyRangeC,
                r.outside.maxWorstDailyRangeC);
    std::printf("PUE                      %.3f\n", r.system.pue);
    std::printf("IT / cooling energy      %.1f / %.1f kWh\n",
                r.system.itKwh, r.system.coolingKwh);
    std::printf("humidity violations      %.1f %% of samples\n",
                100.0 * r.system.humidityViolationFrac);

    if (want_reliability) {
        reliability::DiskReliabilityModel model;
        auto rep = model.assess(r.system);
        std::printf("AFR multiplier           %.2fx (temp %.2fx, "
                    "variation %.2fx)\n",
                    rep.afrMultiplier, rep.temperatureFactor,
                    rep.variationFactor);
    }
    return 0;
}
