/**
 * @file
 * The CoolAir experiment-serving daemon: a persistent process that
 * accepts ExperimentSpecs over a simple line protocol, answers warm
 * requests straight from the persistent result store, and schedules
 * misses onto a shared worker pool with dedup-in-flight (two clients
 * submitting the same canonical spec share one simulation).
 *
 * Usage:
 *   coolair_serve [options]
 *     --socket <path>      listen on a Unix-domain socket
 *     --port <port>        listen on 127.0.0.1:<port> (0 = ephemeral,
 *                          printed on startup)
 *     --cache-dir <dir>    persistent result store (shared with
 *                          experiment_cli --cache-dir and cached
 *                          sweeps); omit to serve without a store
 *     --threads <n>        worker threads (default: COOLAIR_THREADS
 *                          or all cores)
 *     --trace-depth <n>    retain the last n completed request traces
 *                          for the TRACE verb (default 0 = tracing
 *                          off)
 *     --slow-request-seconds <s>
 *                          log one structured line (with per-stage
 *                          span timings when tracing is on) for any
 *                          request slower than s seconds (default 0 =
 *                          off)
 *     --sample-interval <s>
 *                          seconds between time-series samples for
 *                          the SERIES verb (default 1; 0 disables
 *                          sampling)
 *     --coalesce <n>       park cold batch>0 submissions and dispatch
 *                          them to the SoA batched engine as n-lane
 *                          batches (default 0 = off; lanes group by
 *                          batch shape, DESIGN.md §12)
 *     --coalesce-wait-ms <ms>
 *                          collection window: a parked batch older
 *                          than this dispatches partially filled
 *                          (default 5)
 *     --hot-cache-mb <mb>  in-memory hot-result cache budget in MiB;
 *                          repeats of recently-served specs skip disk
 *                          entirely (default 0 = off)
 *     --hot-cache-shards <n>
 *                          mutex stripes for the hot cache (default 8)
 *     --max-pending <n>    reject fresh SUBMITs with `ERR busy: ...`
 *                          while n canonical specs are in flight
 *                          (default 0 = unbounded)
 *
 * At least one of --socket/--port is required.  The daemon runs until
 * a client sends SHUTDOWN (or the process receives SIGINT/SIGTERM via
 * the shell).  Set COOLAIR_LOG_FORMAT=json for machine-parseable log
 * lines.
 *
 * Protocol (see src/serve/protocol.hpp, drivable from netcat):
 *   PING                          -> PONG
 *   SUBMIT site=newark; weeks=1   -> OK <ticket>
 *   WAIT <ticket>                 -> RESULT <n> + formatResult text
 *   RUN site=newark; weeks=1      -> RESULT <n> + formatResult text
 *   STATS                         -> STATS <n> + counter dump
 *   METRICS                       -> METRICS <n> + Prometheus text
 *   SERIES serve.requests 60      -> SERIES <n> + `<unix-ms> <value>`
 *   HEALTH                        -> HEALTH <n> + status lines
 *   TRACE <ticket>                -> TRACE <n> + Chrome-trace JSON
 *   SHUTDOWN                      -> BYE (daemon exits)
 *
 * Watch a live server with coolair_top (same --socket/--port flags).
 *
 * Results are byte-identical to experiment_cli for the same spec —
 * the daemon adds caching and sharing, never a different answer.
 */

#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>

#include "serve/server.hpp"
#include "serve/service.hpp"
#include "util/logging.hpp"
#include "util/parse.hpp"

using namespace coolair;

namespace {

[[noreturn]] void
usage(const char *msg)
{
    std::fprintf(stderr, "error: %s\n(see the header comment in "
                         "examples/coolair_serve_daemon.cpp for usage)\n",
                 msg);
    std::exit(2);
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    serve::ServiceConfig service_config;
    serve::ServerConfig server_config;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc)
                usage(("missing value for " + arg).c_str());
            return argv[++i];
        };
        if (arg == "--socket") {
            server_config.unixPath = next();
        } else if (arg == "--port") {
            long long port = 0;
            const std::string text = next();
            if (!util::parseInt(text, port) || port < 0 || port > 65535)
                usage(("bad port: '" + text + "'").c_str());
            server_config.tcpPort = int(port);
        } else if (arg == "--cache-dir") {
            service_config.cacheDir = next();
        } else if (arg == "--threads") {
            long long n = 0;
            const std::string text = next();
            if (!util::parseInt(text, n) || n < 1 || n > 4096)
                usage(("bad thread count: '" + text + "'").c_str());
            service_config.threads = int(n);
        } else if (arg == "--trace-depth") {
            long long n = 0;
            const std::string text = next();
            if (!util::parseInt(text, n) || n < 0 || n > 65536)
                usage(("bad trace depth: '" + text + "'").c_str());
            service_config.traceDepth = int(n);
        } else if (arg == "--slow-request-seconds") {
            const std::string text = next();
            char *end = nullptr;
            const double s = std::strtod(text.c_str(), &end);
            if (end == text.c_str() || *end != '\0' || s < 0.0)
                usage(("bad slow-request threshold: '" + text + "'")
                          .c_str());
            service_config.slowRequestSeconds = s;
        } else if (arg == "--sample-interval") {
            const std::string text = next();
            char *end = nullptr;
            const double s = std::strtod(text.c_str(), &end);
            if (end == text.c_str() || *end != '\0' || s < 0.0)
                usage(("bad sample interval: '" + text + "'").c_str());
            service_config.sampleIntervalSeconds = s;
        } else if (arg == "--coalesce") {
            long long n = 0;
            const std::string text = next();
            if (!util::parseInt(text, n) || n < 0 || n > 4096)
                usage(("bad coalesce lane count: '" + text + "'")
                          .c_str());
            service_config.coalesceLanes = int(n);
        } else if (arg == "--coalesce-wait-ms") {
            const std::string text = next();
            char *end = nullptr;
            const double ms = std::strtod(text.c_str(), &end);
            if (end == text.c_str() || *end != '\0' || ms < 0.0 ||
                ms > 3600000.0)
                usage(("bad coalesce window: '" + text + "'").c_str());
            service_config.coalesceWaitMs = ms;
        } else if (arg == "--hot-cache-mb") {
            long long mb = 0;
            const std::string text = next();
            if (!util::parseInt(text, mb) || mb < 0 || mb > 1048576)
                usage(("bad hot-cache size: '" + text + "'").c_str());
            service_config.hotCacheBytes = size_t(mb) << 20;
        } else if (arg == "--hot-cache-shards") {
            long long n = 0;
            const std::string text = next();
            if (!util::parseInt(text, n) || n < 1 || n > 4096)
                usage(("bad hot-cache shard count: '" + text + "'")
                          .c_str());
            service_config.hotCacheShards = int(n);
        } else if (arg == "--max-pending") {
            long long n = 0;
            const std::string text = next();
            if (!util::parseInt(text, n) || n < 0)
                usage(("bad max-pending cap: '" + text + "'").c_str());
            service_config.maxPending = size_t(n);
        } else {
            usage(("unknown option: " + arg).c_str());
        }
    }
    if (server_config.unixPath.empty() && server_config.tcpPort < 0)
        usage("need --socket <path> and/or --port <port>");

    try {
        serve::ExperimentService service(service_config);
        serve::LineServer server(service, server_config);
        server.start();

        std::fprintf(stderr, "coolair_serve: %d workers, store %s\n",
                     service.threads(),
                     service_config.cacheDir.empty()
                         ? "(none)"
                         : service_config.cacheDir.c_str());
        if (service_config.coalesceLanes >= 2)
            std::fprintf(stderr,
                         "coalescing batch>0 submissions into %d-lane "
                         "batches (window %.1f ms)\n",
                         service_config.coalesceLanes,
                         service_config.coalesceWaitMs);
        if (service_config.hotCacheBytes > 0)
            std::fprintf(stderr,
                         "hot-result cache: %zu MiB in %d shards\n",
                         service_config.hotCacheBytes >> 20,
                         service_config.hotCacheShards);
        if (!server.unixPath().empty())
            std::fprintf(stderr, "listening on unix socket %s\n",
                         server.unixPath().c_str());
        if (server.tcpPort() >= 0)
            std::fprintf(stderr, "listening on 127.0.0.1:%d\n",
                         server.tcpPort());

        server.waitForShutdown();
        server.stop();
        std::fprintf(stderr, "coolair_serve: shutdown requested, "
                             "draining...\n%s",
                     service.statsText().c_str());
    } catch (const std::exception &e) {
        std::fprintf(stderr, "coolair_serve: %s\n", e.what());
        return 1;
    }
    return 0;
}
