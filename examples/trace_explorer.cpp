/**
 * @file
 * Trace explorer: print the statistical shape of the bundled workload
 * traces (the SWIM-Facebook-like and Nutch-like generators) and simulate
 * them on the Hadoop-like cluster to report achieved utilization, job
 * latency, and server power-cycle counts.
 *
 * Usage:  trace_explorer [facebook|nutch|steady]
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <iostream>
#include <vector>

#include "util/stats.hpp"
#include "util/table.hpp"
#include "workload/cluster.hpp"
#include "workload/trace_gen.hpp"

using namespace coolair;
using namespace coolair::workload;

namespace {

void
printDistribution(const char *name, std::vector<double> values)
{
    if (values.empty())
        return;
    std::sort(values.begin(), values.end());
    auto q = [&](double p) {
        return values[size_t(p * double(values.size() - 1))];
    };
    std::printf("  %-18s p10=%-8.0f p50=%-8.0f p90=%-8.0f p99=%-8.0f "
                "max=%.0f\n",
                name, q(0.10), q(0.50), q(0.90), q(0.99), values.back());
}

} // anonymous namespace

int
main(int argc, char **argv)
{
    const char *which = argc > 1 ? argv[1] : "facebook";

    Trace trace;
    if (std::strcmp(which, "nutch") == 0)
        trace = nutchTrace({});
    else if (std::strcmp(which, "steady") == 0)
        trace = steadyTrace(0.5, {});
    else
        trace = facebookTrace({});

    std::printf("=== trace \"%s\" ===\n", trace.name.c_str());
    std::printf("jobs: %zu   tasks: %lld   offered utilization (128 "
                "slots): %.1f%%\n\n",
                trace.jobs.size(), (long long)trace.totalTasks(),
                100.0 * trace.offeredUtilization(128));

    std::vector<double> maps, reduces, map_dur, input_mb;
    std::vector<double> arrivals_per_hour(24, 0.0);
    for (const auto &j : trace.jobs) {
        maps.push_back(double(j.mapTasks));
        reduces.push_back(double(j.reduceTasks));
        map_dur.push_back(double(j.mapTaskDurS));
        input_mb.push_back(j.inputMb);
        arrivals_per_hour[size_t(j.submitS / util::kSecondsPerHour) %
                          24] += 1.0;
    }
    std::printf("distributions:\n");
    printDistribution("map tasks/job", maps);
    printDistribution("reduce tasks/job", reduces);
    printDistribution("map task dur [s]", map_dur);
    printDistribution("input [MB]", input_mb);

    std::printf("\narrivals by hour:\n ");
    double peak = *std::max_element(arrivals_per_hour.begin(),
                                    arrivals_per_hour.end());
    for (int h = 0; h < 24; ++h) {
        int bars = peak > 0.0
                       ? int(8.0 * arrivals_per_hour[size_t(h)] / peak)
                       : 0;
        std::printf(" %02d:%-8.*s\n ", h, bars, "########");
    }

    // Simulate the day on the cluster and report achieved behavior.
    std::printf("\nsimulating one day on the 64-server cluster...\n");
    ClusterSim sim({}, trace);
    sim.applyPlan(ComputePlan::passthrough());
    util::RunningStats busy;
    for (int64_t t = 0; t < util::kSecondsPerDay; t += 30) {
        sim.step(util::SimTime(t), 30.0);
        busy.add(double(sim.busySlots()) / 128.0);
    }
    ClusterStats st = sim.stats();
    std::printf("  jobs completed: %lld   tasks completed: %lld\n",
                (long long)st.jobsCompleted, (long long)st.tasksCompleted);
    std::printf("  achieved utilization: mean %.1f%%  peak %.1f%%\n",
                100.0 * busy.mean(), 100.0 * busy.max());
    std::printf("  mean job queueing delay: %.0f s   max: %.0f s\n",
                st.meanJobDelayS, st.maxJobDelayS);
    return 0;
}
