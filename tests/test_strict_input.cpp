/**
 * @file
 * Strict-input regression tests for the untrusted-byte boundaries:
 * weather CSV ingestion (atof silently zeroing garbage cells),
 * environment-variable knobs (atoi accepting typos), the result
 * store's size headers (unchecked digit accumulation wrapping to
 * small values and mis-framing the payload read), and the serve
 * protocol's request lines — including the telemetry verbs
 * (METRICS/SERIES/HEALTH/TRACE), whose arguments arrive straight off
 * a socket.
 */

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>

#include "environment/weather.hpp"
#include "serve/protocol.hpp"
#include "serve/service.hpp"
#include "store/result_store.hpp"
#include "util/parse.hpp"

using namespace coolair;
namespace fs = std::filesystem;

// ---------------------------------------------------------------- util/parse

TEST(ParseInt, AcceptsCompleteNumbers)
{
    long long v = 0;
    EXPECT_TRUE(util::parseInt("0", v));
    EXPECT_EQ(v, 0);
    EXPECT_TRUE(util::parseInt("-42", v));
    EXPECT_EQ(v, -42);
    EXPECT_TRUE(util::parseInt("+7", v));
    EXPECT_EQ(v, 7);
    EXPECT_TRUE(util::parseInt("9223372036854775807", v));
    EXPECT_EQ(v, 9223372036854775807LL);
}

TEST(ParseInt, RejectsPartialAndOverflow)
{
    long long v = 0;
    EXPECT_FALSE(util::parseInt("", v));
    EXPECT_FALSE(util::parseInt("8x", v));       // the atoi trap
    EXPECT_FALSE(util::parseInt("x8", v));
    EXPECT_FALSE(util::parseInt("-", v));
    EXPECT_FALSE(util::parseInt("1 ", v));
    EXPECT_FALSE(util::parseInt(" 1", v));
    EXPECT_FALSE(util::parseInt("9223372036854775808", v));  // LLONG_MAX+1
}

TEST(ParseDouble, AcceptsCompleteNumbers)
{
    double v = 0.0;
    EXPECT_TRUE(util::parseDouble("12.5", v));
    EXPECT_DOUBLE_EQ(v, 12.5);
    EXPECT_TRUE(util::parseDouble("-3e2", v));
    EXPECT_DOUBLE_EQ(v, -300.0);
    EXPECT_TRUE(util::parseDouble(".5", v));
    EXPECT_DOUBLE_EQ(v, 0.5);
}

TEST(ParseDouble, RejectsGarbageInfinityAndNan)
{
    double v = 0.0;
    EXPECT_FALSE(util::parseDouble("", v));
    EXPECT_FALSE(util::parseDouble("12abc", v));  // the atof trap
    EXPECT_FALSE(util::parseDouble("oops", v));
    EXPECT_FALSE(util::parseDouble("-", v));
    EXPECT_FALSE(util::parseDouble("1.5.2", v));
    EXPECT_FALSE(util::parseDouble("inf", v));
    EXPECT_FALSE(util::parseDouble("nan", v));
    EXPECT_FALSE(util::parseDouble("1e999", v));  // overflows to inf
    EXPECT_FALSE(util::parseDouble("0x10", v));   // hex floats
    EXPECT_FALSE(util::parseDouble(" 1", v));     // leading whitespace
}

TEST(ParseSize, RejectsOverflowInsteadOfWrapping)
{
    uint64_t v = 0;
    EXPECT_TRUE(util::parseSize("0", v));
    EXPECT_EQ(v, 0u);
    EXPECT_TRUE(util::parseSize("18446744073709551615", v));  // UINT64_MAX
    EXPECT_EQ(v, UINT64_MAX);
    // One past UINT64_MAX: digit accumulation would wrap to 0.
    EXPECT_FALSE(util::parseSize("18446744073709551616", v));
    EXPECT_FALSE(util::parseSize("99999999999999999999999", v));
    EXPECT_FALSE(util::parseSize("-1", v));  // sign is not a size
    EXPECT_FALSE(util::parseSize("+1", v));
    EXPECT_FALSE(util::parseSize("", v));
    EXPECT_FALSE(util::parseSize("12 ", v));
}

TEST(ParseSize, EnforcesCallerCap)
{
    uint64_t v = 0;
    EXPECT_TRUE(util::parseSize("1024", v, 1024));
    EXPECT_EQ(v, 1024u);
    EXPECT_FALSE(util::parseSize("1025", v, 1024));
}

TEST(EnvInt, UnsetYieldsFallbackSilently)
{
    ::unsetenv("COOLAIR_TEST_KNOB");
    EXPECT_EQ(util::envInt("COOLAIR_TEST_KNOB", 7), 7);
}

TEST(EnvInt, ParsesValidValues)
{
    ::setenv("COOLAIR_TEST_KNOB", "12", 1);
    EXPECT_EQ(util::envInt("COOLAIR_TEST_KNOB", 7), 12);
    ::unsetenv("COOLAIR_TEST_KNOB");
}

TEST(EnvInt, MalformedAndOutOfRangeFallBack)
{
    ::setenv("COOLAIR_TEST_KNOB", "8x", 1);  // typo'd knob
    EXPECT_EQ(util::envInt("COOLAIR_TEST_KNOB", 7), 7);
    ::setenv("COOLAIR_TEST_KNOB", "-1", 1);  // below the floor
    EXPECT_EQ(util::envInt("COOLAIR_TEST_KNOB", 7, 0, 100), 7);
    ::setenv("COOLAIR_TEST_KNOB", "101", 1);  // above the cap
    EXPECT_EQ(util::envInt("COOLAIR_TEST_KNOB", 7, 0, 100), 7);
    ::setenv("COOLAIR_TEST_KNOB", "", 1);  // empty counts as unset
    EXPECT_EQ(util::envInt("COOLAIR_TEST_KNOB", 7), 7);
    ::unsetenv("COOLAIR_TEST_KNOB");
}

// ------------------------------------------------------------- weather CSV

namespace {

environment::CsvWeatherSeries
parseCsv(const std::string &text)
{
    std::istringstream in(text);
    return environment::CsvWeatherSeries::fromCsv(in);
}

/** The invalid_argument message for a CSV that must fail to parse. */
std::string
csvError(const std::string &text)
{
    try {
        parseCsv(text);
    } catch (const std::invalid_argument &e) {
        return e.what();
    }
    return "";  // parsed fine (the caller EXPECTs a non-empty message)
}

} // anonymous namespace

TEST(WeatherCsv, ParsesWellFormedRows)
{
    environment::CsvWeatherSeries series = parseCsv("hour,temp_c,rh\n"
                                                    "0,10.0,50\n"
                                                    "1,12.5,55\n"
                                                    "3,14.0,60\n");
    EXPECT_EQ(series.hours(), 4u);  // hour 2 repeats hour 1
    EXPECT_DOUBLE_EQ(series.sample(util::SimTime(1 * 3600)).tempC, 12.5);
    EXPECT_DOUBLE_EQ(series.sample(util::SimTime(2 * 3600)).tempC, 12.5);
}

TEST(WeatherCsv, RejectsGarbageCellsWithRowNumbers)
{
    // Before the fix, atof turned "1o.0" into 1.0 silently.
    EXPECT_NE(csvError("h,t,rh\n0,1o.0,50\n"), "");
    EXPECT_NE(csvError("h,t,rh\n0,10.0,50\n1,,55\n").find("weather row 2"),
              std::string::npos);
    EXPECT_NE(csvError("h,t,rh\n0,10.0,fifty\n").find("weather row 1"),
              std::string::npos);
    EXPECT_NE(csvError("h,t,rh\n0\n"), "");                // missing columns
    EXPECT_NE(csvError("h,t,rh\n0,10.0,50,9,9\n"), "");    // extra columns
    // rh_percent is optional; a 2-cell row is well-formed.
    EXPECT_EQ(csvError("h,t\n0,10.0\n"), "");
}

TEST(WeatherCsv, RejectsBadHourIndices)
{
    EXPECT_NE(csvError("h,t,rh\n-1,10.0,50\n"), "");       // negative
    EXPECT_NE(csvError("h,t,rh\n0.5,10.0,50\n"), "");      // fractional
    EXPECT_NE(csvError("h,t,rh\n99999999,10.0,50\n"), ""); // past a year
    EXPECT_NE(csvError("h,t,rh\n5,10.0,50\n5,11.0,50\n"),  // not increasing
              "");
    EXPECT_NE(csvError("h,t,rh\n5,10.0,50\n4,11.0,50\n"), "");
}

TEST(WeatherCsv, RejectsEmptyInput)
{
    EXPECT_NE(csvError("hour,temp_c,rh\n"), "");  // header only
    EXPECT_NE(csvError(""), "");
}

// --------------------------------------------------- store size headers

namespace {

/** The single .res entry file in @p dir. */
fs::path
onlyEntry(const fs::path &dir)
{
    fs::path found;
    for (const auto &e : fs::directory_iterator(dir))
        if (e.path().extension() == ".res")
            found = e.path();
    return found;
}

std::string
readFile(const fs::path &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
writeFile(const fs::path &path, const std::string &text)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text;
}

/** Replace one whole header line ("name old" -> "name new"). */
std::string
patchHeader(std::string blob, const std::string &name,
            const std::string &value)
{
    const std::string prefix = name + " ";
    const size_t at = blob.find("\n" + prefix) + 1;
    const size_t end = blob.find('\n', at);
    return blob.replace(at, end - at, prefix + value);
}

struct TempDir
{
    fs::path path;
    TempDir()
    {
        path = fs::temp_directory_path() /
               ("coolair_strict." +
                std::to_string(uint64_t(::getpid())) + "." +
                std::string(
                    ::testing::UnitTest::GetInstance()
                        ->current_test_info()
                        ->name()));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

} // anonymous namespace

TEST(StoreSizeHeaders, OverflowingCountIsCorruptNotCrash)
{
    TempDir dir;
    store::ResultStore store(dir.path.string(), "salt", 1);
    ASSERT_TRUE(store.store("spec-id", "payload text\n"));

    // A header whose digits wrap a 64-bit accumulator: with unchecked
    // accumulation this parsed as a small number and mis-framed the
    // payload read.
    const fs::path entry = onlyEntry(dir.path);
    ASSERT_FALSE(entry.empty());
    writeFile(entry, patchHeader(readFile(entry), "payload_bytes",
                                 "18446744073709551629"));  // wraps to 13

    std::string payload;
    EXPECT_FALSE(store.lookup("spec-id", payload));
    EXPECT_EQ(store.stats().corruptEntries, 1u);
    EXPECT_FALSE(fs::exists(entry));  // corrupt entries are removed
}

TEST(StoreSizeHeaders, AbsurdButNonWrappingCountIsCorrupt)
{
    TempDir dir;
    store::ResultStore store(dir.path.string(), "salt", 1);
    ASSERT_TRUE(store.store("spec-id", "payload text\n"));

    const fs::path entry = onlyEntry(dir.path);
    ASSERT_FALSE(entry.empty());
    // 4 GiB claimed: fits in 64 bits but exceeds the per-entry sanity
    // cap, so it must be rejected before any allocation is attempted.
    writeFile(entry, patchHeader(readFile(entry), "id_bytes",
                                 "4294967296"));

    std::string payload;
    EXPECT_FALSE(store.lookup("spec-id", payload));
    EXPECT_EQ(store.stats().corruptEntries, 1u);
}

TEST(StoreSizeHeaders, NonNumericCountIsCorrupt)
{
    TempDir dir;
    store::ResultStore store(dir.path.string(), "salt", 1);
    ASSERT_TRUE(store.store("spec-id", "payload text\n"));

    const fs::path entry = onlyEntry(dir.path);
    ASSERT_FALSE(entry.empty());
    writeFile(entry,
              patchHeader(readFile(entry), "payload_bytes", "13x"));

    std::string payload;
    EXPECT_FALSE(store.lookup("spec-id", payload));
    EXPECT_EQ(store.stats().corruptEntries, 1u);
}

TEST(StoreSizeHeaders, IntactEntryStillRoundTrips)
{
    TempDir dir;
    store::ResultStore store(dir.path.string(), "salt", 1);
    ASSERT_TRUE(store.store("spec-id", "payload text\n"));
    std::string payload;
    ASSERT_TRUE(store.lookup("spec-id", payload));
    EXPECT_EQ(payload, "payload text\n");
}

// --------------------------------------------------- serve protocol lines

namespace {

/** Parse one request line, expecting rejection; returns the error. */
std::string
requestError(const std::string &line)
{
    serve::Request req;
    std::string error;
    if (serve::parseRequest(line, req, error))
        return "";  // parsed fine (the caller EXPECTs a message)
    EXPECT_FALSE(error.empty()) << "silent rejection of '" << line << "'";
    return error;
}

} // anonymous namespace

TEST(ServeProtocol, ParsesTelemetryVerbs)
{
    serve::Request req;
    std::string error;
    ASSERT_TRUE(serve::parseRequest("METRICS", req, error)) << error;
    EXPECT_EQ(req.verb, serve::Verb::Metrics);
    ASSERT_TRUE(serve::parseRequest("HEALTH", req, error)) << error;
    EXPECT_EQ(req.verb, serve::Verb::Health);
    ASSERT_TRUE(serve::parseRequest("SERIES serve.requests 60", req,
                                    error))
        << error;
    EXPECT_EQ(req.verb, serve::Verb::Series);
    EXPECT_EQ(req.arg, "serve.requests 60");
    ASSERT_TRUE(serve::parseRequest("TRACE 7", req, error)) << error;
    EXPECT_EQ(req.verb, serve::Verb::Trace);
    EXPECT_EQ(req.arg, "7");
}

TEST(ServeProtocol, RejectsMalformedTelemetryLines)
{
    // Every rejection must name the problem; none may throw.  The
    // variants cover missing arguments, forbidden arguments, case
    // mangling, and whitespace abuse — all as they arrive off a socket.
    const char *lines[] = {
        "",
        " ",
        "METRICS now",       // METRICS takes no argument
        "HEALTH check",
        "SERIES",            // SERIES needs a stat name
        "TRACE",             // TRACE needs a ticket
        "metrics",           // verbs are case-sensitive
        "Series serve.requests",
        "TRACEROUTE 1",      // prefix of a verb is not the verb
        "METRICSX",
        "\tMETRICS",         // no leading whitespace tolerance
        " METRICS",
    };
    for (const char *line : lines)
        EXPECT_NE(requestError(line), "") << "'" << line << "'";
}

TEST(ServeProtocol, FrameHeaderRejectsHostileSizes)
{
    // The same strict-size discipline the store headers get: a count
    // that wraps, overflows the cap, or trails garbage is a framing
    // error before any allocation happens.
    std::string tag, error;
    uint64_t bytes = 0;
    EXPECT_TRUE(
        serve::parsePayloadHeader("METRICS 12", tag, bytes, error));
    EXPECT_EQ(tag, "METRICS");
    EXPECT_EQ(bytes, 12u);

    const char *bad[] = {
        "METRICS",                                // no size at all
        "METRICS ",                               // empty size
        "METRICS -1",                             // sign is not a size
        "METRICS 12x",                            // trailing garbage
        "METRICS 18446744073709551616",           // wraps uint64
        "METRICS 99999999999999999999999999",     // way past uint64
        "METRICS 16777217",                       // kMaxFrameBytes + 1
        "METRICS 12 13",                          // two sizes
    };
    for (const char *line : bad) {
        EXPECT_FALSE(serve::parsePayloadHeader(line, tag, bytes, error))
            << "'" << line << "'";
        EXPECT_FALSE(error.empty()) << "'" << line << "'";
    }
}

TEST(ServeProtocol, BusyErrIsOneStructuredLine)
{
    // The busy rejection is the one ERR clients key retry logic on:
    // it must keep its `ERR busy: ` prefix and stay a single line even
    // when the human-readable remainder is hostile (embedded newlines
    // would desynchronize the line protocol).
    const std::string framed = serve::frameErr(
        std::string(serve::kBusyPrefix) + "7 specs\nin flight\r\n");
    EXPECT_EQ(framed.rfind("ERR busy: ", 0), 0u) << framed;
    EXPECT_EQ(framed.find('\n'), framed.size() - 1) << framed;
    EXPECT_EQ(framed.find('\r'), std::string::npos) << framed;

    // No other rejection class may squat on the prefix by accident.
    EXPECT_EQ(serve::frameErr("parse failure: busy site").rfind(
                  "ERR busy: ", 0),
              std::string::npos);
}

TEST(ServeProtocol, RequestLineFuzzIsCrashFree)
{
    // Deterministic xorshift fuzz over request lines and frame
    // headers: arbitrary socket bytes must parse or reject with a
    // message — never throw, never reject silently.
    uint64_t state = 0x9e3779b97f4a7c15ull;
    auto next = [&state]() {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };
    const char *verbs[] = {"PING",   "SUBMIT", "WAIT",  "RUN",
                           "STATS",  "METRICS", "SERIES", "HEALTH",
                           "TRACE",  "SHUTDOWN"};
    for (int round = 0; round < 2000; ++round) {
        std::string line;
        if (round % 3 == 0)
            line = verbs[next() % 10];  // real verb, fuzzed argument
        const size_t len = next() % 48;
        for (size_t i = 0; i < len; ++i) {
            // Bias toward protocol-meaningful bytes, keep raw ones.
            const uint64_t r = next();
            const char pool[] = " \t\r\n;=0123456789-xkMETRICS";
            line += (r & 1) ? pool[(r >> 1) % (sizeof(pool) - 1)]
                            : char(r >> 1 & 0xff);
        }
        serve::Request req;
        std::string error;
        if (!serve::parseRequest(line, req, error)) {
            EXPECT_FALSE(error.empty()) << "silent reject: '" << line
                                        << "'";
        }
        std::string tag;
        uint64_t bytes = 0;
        error.clear();
        if (!serve::parsePayloadHeader(line, tag, bytes, error)) {
            EXPECT_FALSE(error.empty()) << "silent reject: '" << line
                                        << "'";
        } else {
            EXPECT_LE(bytes, serve::kMaxFrameBytes);
        }
    }
}

TEST(ServeSpec, HostileBatchValuesAreStructuredErrors)
{
    // The batch key is the coalescing opt-in and arrives off the
    // socket: out-of-range, non-numeric, and overflowing values must
    // come back as parse errors from a live coalescing service — no
    // crash, no giant lane allocation.
    serve::ServiceConfig config;
    config.coalesceLanes = 2;
    config.coalesceWaitMs = 5.0;
    serve::ExperimentService service(config);

    const char *bad[] = {
        "batch=-1",      "batch=1025",
        "batch=abc",     "batch=4x",
        "batch=1e3",     "batch=99999999999999999999",
    };
    for (const char *key : bad) {
        serve::ExperimentService::Submitted sub =
            service.submit(serve::specTextFromArg(
                std::string("run=day; day=10; site=newark; "
                            "system=baseline; workload=profile; "
                            "physics_step=120; ") +
                key));
        EXPECT_FALSE(sub.ok) << key;
        EXPECT_FALSE(sub.error.empty()) << key;
    }
    EXPECT_EQ(service.stats().counter("serve.parse_errors", "").value(),
              6);

    // The in-range value still parks and runs through the window.
    serve::ExperimentService::Reply ok = service.run(
        serve::specTextFromArg("run=day; day=10; site=newark; "
                               "system=baseline; workload=profile; "
                               "physics_step=120; batch=2"));
    EXPECT_TRUE(ok.ok) << ok.error;
}
