/**
 * @file
 * Tests for the Cooling Learner pipeline: model fitting quality,
 * recirculation ranking, and power-model recovery.
 */

#include <gtest/gtest.h>

#include <array>

#include "model/learner.hpp"
#include "sim/experiment.hpp"

using namespace coolair;
using namespace coolair::model;

namespace {

/** A short, fast learner configuration for tests. */
LearnerConfig
fastConfig()
{
    LearnerConfig cfg;
    cfg.campaignDays = 6;
    cfg.seed = 424242;
    return cfg;
}

} // anonymous namespace

TEST(Learner, FitsSteadyModelsForAllRegimeClasses)
{
    LearnedBundle bundle = CoolingLearner::learn(
        plant::PlantConfig::parasol(), cooling::RegimeMenu::parasol(),
        fastConfig());

    // Every steady regime class should have models for every pod.
    using cooling::RegimeClass;
    for (RegimeClass c : {RegimeClass::Closed, RegimeClass::FcLow,
                          RegimeClass::FcMid, RegimeClass::FcHigh,
                          RegimeClass::AcFanOnly,
                          RegimeClass::AcCompressor}) {
        for (int p = 0; p < 8; ++p) {
            EXPECT_TRUE(bundle.model.hasTempModel({c, c}, p))
                << cooling::regimeClassName(c) << " pod " << p;
        }
    }
    EXPECT_GT(bundle.fittedTempModels, 48u);
}

TEST(Learner, TrainErrorIsSmall)
{
    LearnedBundle bundle = CoolingLearner::learn(
        plant::PlantConfig::parasol(), cooling::RegimeMenu::parasol(),
        fastConfig());
    // Sensor noise is 0.2 C; a good fit's RMSE is in that ballpark.
    EXPECT_LT(bundle.tempTrainRmse, 0.6);
    EXPECT_LT(bundle.humidityTrainRmse, 0.6);
}

TEST(Learner, RecircRankingMatchesPlantGradient)
{
    // The plant config grades recirculation from pod 0 (least) to pod 7
    // (most); the probe must recover that ordering at the extremes.
    LearnedBundle bundle = CoolingLearner::learn(
        plant::PlantConfig::parasol(), cooling::RegimeMenu::parasol(),
        fastConfig());

    ASSERT_EQ(bundle.recircRankAscending.size(), 8u);
    EXPECT_EQ(bundle.recircRankAscending.front(), 0);
    EXPECT_EQ(bundle.recircRankAscending.back(), 7);
    // Probe rises are monotone within tolerance: last > first clearly.
    EXPECT_GT(bundle.recircProbeRiseC[7], bundle.recircProbeRiseC[0]);
}

TEST(Learner, PowerModelTracksFanCubic)
{
    LearnedBundle bundle = CoolingLearner::learn(
        plant::PlantConfig::parasol(), cooling::RegimeMenu::parasol(),
        fastConfig());
    // FC power: 8..425 W cubic.
    double lo =
        bundle.model.predictCoolingPower(cooling::Regime::freeCooling(0.2));
    double hi =
        bundle.model.predictCoolingPower(cooling::Regime::freeCooling(1.0));
    EXPECT_NEAR(lo, 8.0 + 417.0 * 0.008, 8.0);
    EXPECT_NEAR(hi, 425.0, 30.0);
    // AC constants recovered.
    EXPECT_NEAR(
        bundle.model.predictCoolingPower(cooling::Regime::acCompressor(1.0)),
        2200.0, 60.0);
}

TEST(Learner, DeterministicGivenSeed)
{
    LearnedBundle a = CoolingLearner::learn(plant::PlantConfig::parasol(),
                                            cooling::RegimeMenu::parasol(),
                                            fastConfig());
    LearnedBundle b = CoolingLearner::learn(plant::PlantConfig::parasol(),
                                            cooling::RegimeMenu::parasol(),
                                            fastConfig());
    EXPECT_EQ(a.fittedTempModels, b.fittedTempModels);
    EXPECT_DOUBLE_EQ(a.tempTrainRmse, b.tempTrainRmse);
    EXPECT_EQ(a.recircRankAscending, b.recircRankAscending);
}

TEST(Learner, ProbeRisesAreOrderedByRecircExposure)
{
    auto rises =
        CoolingLearner::probeRecirculation(plant::PlantConfig::parasol());
    ASSERT_EQ(rises.size(), 8u);
    // Spearman-ish check: the top-3 exposure pods all rise more than the
    // bottom-3.
    for (int hi : {5, 6, 7})
        for (int lo : {0, 1, 2})
            EXPECT_GT(rises[size_t(hi)], rises[size_t(lo)]);
}

TEST(Learner, SharedBundleIsMemoized)
{
    const LearnedBundle &a = sim::sharedBundle();
    const LearnedBundle &b = sim::sharedBundle();
    EXPECT_EQ(&a, &b);
    EXPECT_GT(a.fittedTempModels, 48u);
}

TEST(CampaignWeather, CoversConfiguredRange)
{
    CampaignWeather w(-5.0, 35.0, 3);
    double lo = 1e9, hi = -1e9;
    for (int64_t t = 0; t < 4 * util::kSecondsPerDay; t += 600) {
        double temp = w.at(util::SimTime(t)).tempC;
        lo = std::min(lo, temp);
        hi = std::max(hi, temp);
    }
    EXPECT_LT(lo, 2.0);    // approaches the low end
    EXPECT_GT(hi, 28.0);   // approaches the high end
    EXPECT_GE(lo, -10.0);
    EXPECT_LE(hi, 40.0);
}
