/**
 * @file
 * Unit tests for util::SimTime calendar arithmetic.
 */

#include <gtest/gtest.h>

#include "util/sim_time.hpp"

using namespace coolair::util;

TEST(SimTime, DefaultIsZero)
{
    SimTime t;
    EXPECT_EQ(t.seconds(), 0);
    EXPECT_EQ(t.dayOfYear(), 0);
    EXPECT_EQ(t.hourOfDay(), 0);
    EXPECT_EQ(t.minuteOfHour(), 0);
}

TEST(SimTime, FromCalendarComposes)
{
    SimTime t = SimTime::fromCalendar(10, 13, 45, 30);
    EXPECT_EQ(t.dayOfYear(), 10);
    EXPECT_EQ(t.hourOfDay(), 13);
    EXPECT_EQ(t.minuteOfHour(), 45);
    EXPECT_EQ(t.secondOfDay(), 13 * 3600 + 45 * 60 + 30);
}

TEST(SimTime, FractionalAccessors)
{
    SimTime noon = SimTime::fromCalendar(2, 12);
    EXPECT_DOUBLE_EQ(noon.fractionalHourOfDay(), 12.0);
    EXPECT_DOUBLE_EQ(noon.days(), 2.5);
    EXPECT_DOUBLE_EQ(noon.hours(), 60.0);
}

TEST(SimTime, ArithmeticOperators)
{
    SimTime t = SimTime::fromCalendar(1, 0);
    SimTime u = t + kSecondsPerHour;
    EXPECT_EQ(u.hourOfDay(), 1);
    EXPECT_EQ(u - t, kSecondsPerHour);
    EXPECT_LT(t, u);
    u += kSecondsPerDay;
    EXPECT_EQ(u.dayOfYear(), 2);
}

TEST(SimTime, DayWrapsAtYearEnd)
{
    SimTime t(kSecondsPerYear + 5 * kSecondsPerDay);
    EXPECT_EQ(t.dayOfYear(), 5);
}

TEST(SimTime, NegativeTimesNormalize)
{
    SimTime t(-1);  // one second before midnight Jan 1
    EXPECT_EQ(t.secondOfDay(), int(kSecondsPerDay) - 1);
    EXPECT_EQ(t.hourOfDay(), 23);
    EXPECT_EQ(t.dayOfYear(), kDaysPerYear - 1);
}

TEST(SimTime, StartOfDay)
{
    SimTime t = SimTime::fromCalendar(33, 17, 20);
    EXPECT_EQ(t.startOfDay().seconds(), 33 * kSecondsPerDay);
    EXPECT_EQ(t.startOfDay().hourOfDay(), 0);
}

TEST(SimTime, MonthBoundaries)
{
    EXPECT_EQ(SimTime::fromCalendar(0, 0).month(), 0);     // Jan 1
    EXPECT_EQ(SimTime::fromCalendar(30, 0).month(), 0);    // Jan 31
    EXPECT_EQ(SimTime::fromCalendar(31, 0).month(), 1);    // Feb 1
    EXPECT_EQ(SimTime::fromCalendar(58, 0).month(), 1);    // Feb 28
    EXPECT_EQ(SimTime::fromCalendar(59, 0).month(), 2);    // Mar 1
    EXPECT_EQ(SimTime::fromCalendar(364, 0).month(), 11);  // Dec 31
}

TEST(SimTime, MonthNames)
{
    EXPECT_STREQ(monthName(0), "Jan");
    EXPECT_STREQ(monthName(11), "Dec");
}

TEST(SimTime, StringFormat)
{
    SimTime t = SimTime::fromCalendar(7, 9, 5, 3);
    EXPECT_EQ(t.str(), "d007 09:05:03");
}

TEST(SimTime, MonthStartDaysCoverYear)
{
    EXPECT_EQ(kMonthStartDay[0], 0);
    EXPECT_EQ(kMonthStartDay[12], 365);
    for (int m = 0; m < 12; ++m)
        EXPECT_LT(kMonthStartDay[m], kMonthStartDay[m + 1]);
}

/** Property: derived fields recompose into the original second count. */
class SimTimeRoundTrip : public ::testing::TestWithParam<int64_t>
{
};

TEST_P(SimTimeRoundTrip, FieldsRecompose)
{
    SimTime t(GetParam());
    int64_t recomposed =
        int64_t(t.dayOfYear()) * kSecondsPerDay + t.secondOfDay();
    int64_t wrapped =
        ((t.seconds() % kSecondsPerYear) + kSecondsPerYear) % kSecondsPerYear;
    EXPECT_EQ(recomposed, wrapped);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SimTimeRoundTrip,
                         ::testing::Values(0, 1, 59, 3600, 86399, 86400,
                                           86401, 12345678, kSecondsPerYear,
                                           kSecondsPerYear + 42, -1, -86400,
                                           -86401));
