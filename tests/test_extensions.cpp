/**
 * @file
 * Tests for the extension features: the weather-provider abstraction
 * with CSV import, wet-bulb psychrometrics, the evaporative pre-cooler,
 * the chilled-water backup variant, and sensor-fault injection.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "environment/location.hpp"
#include "environment/weather.hpp"
#include "physics/psychrometrics.hpp"
#include "plant/parasol.hpp"
#include "sim/engine.hpp"
#include "sim/experiment.hpp"
#include "workload/cluster.hpp"
#include "workload/trace_gen.hpp"

using namespace coolair;
using namespace coolair::environment;
using coolair::cooling::Regime;
using coolair::util::SimTime;

// ---------------------------------------------------------------------------
// Wet bulb
// ---------------------------------------------------------------------------

TEST(WetBulb, KnownPoints)
{
    // Stull's reference: T=20 C, RH=50 % -> Tw ~= 13.7 C.
    EXPECT_NEAR(physics::wetBulb(20.0, 50.0), 13.7, 0.5);
    // Saturated air: wet bulb equals dry bulb (within fit error).
    EXPECT_NEAR(physics::wetBulb(30.0, 99.0), 30.0, 0.6);
}

TEST(WetBulb, BelowDryBulbAndMonotoneInRh)
{
    for (double t = 5.0; t <= 45.0; t += 10.0) {
        double prev = physics::wetBulb(t, 10.0);
        EXPECT_LE(prev, t);
        for (double rh = 20.0; rh <= 90.0; rh += 10.0) {
            double wb = physics::wetBulb(t, rh);
            EXPECT_LE(wb, t + 1e-9);
            EXPECT_GE(wb, prev - 0.05);  // higher RH -> higher wet bulb
            prev = wb;
        }
    }
}

// ---------------------------------------------------------------------------
// CSV weather
// ---------------------------------------------------------------------------

TEST(CsvWeather, ParsesAndInterpolates)
{
    std::istringstream csv(
        "hour,temp_c,rh\n0,10.0,50\n1,12.0,60\n2,14.0,70\n");
    CsvWeatherSeries w = CsvWeatherSeries::fromCsv(csv);
    EXPECT_EQ(w.hours(), 3u);
    EXPECT_NEAR(w.sample(SimTime(0)).tempC, 10.0, 1e-9);
    // Half past hour 0: interpolated.
    EXPECT_NEAR(w.sample(SimTime(1800)).tempC, 11.0, 1e-9);
    EXPECT_NEAR(w.sample(SimTime(1800)).rhPercent, 55.0, 1e-9);
}

TEST(CsvWeather, WrapsAroundSeries)
{
    CsvWeatherSeries w({5.0, 15.0}, {40.0, 60.0});
    // Hour 2 wraps to hour 0.
    EXPECT_NEAR(w.sample(SimTime(2 * util::kSecondsPerHour)).tempC, 5.0,
                1e-9);
    // Hour 1.5 interpolates toward the wrap.
    EXPECT_NEAR(
        w.sample(SimTime(util::kSecondsPerHour * 3 / 2)).tempC, 10.0,
        1e-9);
}

TEST(CsvWeather, DrivesForecasterAndEngine)
{
    // A flat 18 C recorded series can stand in for the Climate.
    std::vector<double> temps(48, 18.0), rhs(48, 55.0);
    CsvWeatherSeries weather(std::move(temps), std::move(rhs));

    Forecaster forecaster(weather);
    Forecast fc = forecaster.fullDay(SimTime::fromCalendar(0, 0));
    ASSERT_EQ(fc.hours.size(), 24u);
    EXPECT_NEAR(fc.meanTempC(), 18.0, 1e-6);

    plant::Plant plant(plant::PlantConfig::smoothParasol(), 3);
    workload::ClusterSim cluster({}, workload::steadyTrace(0.3, {}));
    sim::BaselineController baseline;
    sim::MetricsCollector metrics({}, 8);
    sim::Engine engine(plant, cluster, baseline, weather);
    engine.setMetrics(&metrics);
    engine.runDay(1);
    EXPECT_EQ(metrics.summary().days, 1u);
}

// ---------------------------------------------------------------------------
// Evaporative pre-cooler
// ---------------------------------------------------------------------------

namespace {

environment::WeatherSample
weatherAt(double temp_c, double rh)
{
    environment::WeatherSample w;
    w.tempC = temp_c;
    w.rhPercent = rh;
    w.absHumidity = physics::absoluteHumidity(temp_c, rh);
    return w;
}

double
steadyInletUnder(const plant::PlantConfig &pc, const Regime &regime,
                 const environment::WeatherSample &w)
{
    plant::Plant plant(pc, 3);
    plant.initializeSteadyState(w, 6.0);
    plant::PodLoad load = plant::PodLoad::uniform(8, 8, 0.5);
    for (int i = 0; i < 360; ++i)
        plant.step(30.0, w, load, regime);
    double sum = 0.0;
    for (int p = 0; p < 8; ++p)
        sum += plant.truePodInletC(p);
    return sum / 8.0;
}

} // anonymous namespace

TEST(Evaporative, CoolsBelowDryFreeCoolingWhenArid)
{
    plant::PlantConfig pc = plant::PlantConfig::smoothParasolEvaporative();
    auto hot_dry = weatherAt(38.0, 15.0);
    double dry = steadyInletUnder(pc, Regime::freeCooling(1.0), hot_dry);
    double evap = steadyInletUnder(
        pc, Regime::freeCoolingEvaporative(1.0), hot_dry);
    // Wet bulb at 38 C / 15 % RH is ~17 C: large evaporative headroom.
    EXPECT_LT(evap, dry - 5.0);
}

TEST(Evaporative, NoBenefitWhenSaturated)
{
    plant::PlantConfig pc = plant::PlantConfig::smoothParasolEvaporative();
    auto hot_humid = weatherAt(32.0, 95.0);
    double dry = steadyInletUnder(pc, Regime::freeCooling(1.0), hot_humid);
    double evap = steadyInletUnder(
        pc, Regime::freeCoolingEvaporative(1.0), hot_humid);
    EXPECT_NEAR(evap, dry, 1.0);
}

TEST(Evaporative, RaisesInsideHumidity)
{
    plant::PlantConfig pc = plant::PlantConfig::smoothParasolEvaporative();
    auto hot_dry = weatherAt(38.0, 15.0);

    plant::Plant plant(pc, 3);
    plant.initializeSteadyState(hot_dry, 6.0);
    plant::PodLoad load = plant::PodLoad::uniform(8, 8, 0.5);
    for (int i = 0; i < 240; ++i)
        plant.step(30.0, hot_dry, load,
                   Regime::freeCoolingEvaporative(1.0));
    auto sensors = plant.readSensors();
    EXPECT_GT(sensors.coldAisleAbsHumidity, hot_dry.absHumidity + 2.0);
}

TEST(Evaporative, IgnoredWithoutTheCooler)
{
    plant::PlantConfig pc = plant::PlantConfig::smoothParasol();
    ASSERT_FALSE(pc.hasEvaporativeCooler);
    auto hot_dry = weatherAt(38.0, 15.0);
    double dry = steadyInletUnder(pc, Regime::freeCooling(1.0), hot_dry);
    double evap = steadyInletUnder(
        pc, Regime::freeCoolingEvaporative(1.0), hot_dry);
    // Pump power differs but the thermal path must be identical.
    EXPECT_NEAR(evap, dry, 0.3);
}

TEST(Evaporative, RegimeClassAndMenu)
{
    EXPECT_EQ(classify(Regime::freeCoolingEvaporative(0.5)),
              cooling::RegimeClass::FcEvap);
    EXPECT_EQ(classify(Regime::freeCooling(0.5)),
              cooling::RegimeClass::FcMid);
    EXPECT_EQ(Regime::freeCoolingEvaporative(0.5).str(), "fc+evap@0.50");

    auto menu = cooling::RegimeMenu::smoothWithEvaporative();
    int evap_count = 0;
    for (const auto &r : menu.candidates)
        if (r.evaporative)
            ++evap_count;
    EXPECT_EQ(evap_count, 3);
}

TEST(Evaporative, ExperimentVariantRuns)
{
    sim::ExperimentSpec spec;
    spec.location = namedLocation(NamedSite::Chad);
    spec.system = sim::SystemId::AllNd;
    spec.variant = sim::PlantVariant::Evaporative;
    spec.weeks = 2;
    sim::ExperimentResult r = sim::runYearExperiment(spec);
    EXPECT_GT(r.system.itKwh, 0.0);
}

// ---------------------------------------------------------------------------
// Chiller variant
// ---------------------------------------------------------------------------

TEST(Chiller, CheaperBackupCoolingAtFullTilt)
{
    plant::PlantConfig dx = plant::PlantConfig::smoothParasol();
    plant::PlantConfig ch = plant::PlantConfig::smoothParasolChiller();
    EXPECT_LT(ch.actuators.power.acFullW, dx.actuators.power.acFullW);
    EXPECT_GT(ch.acCapacityW, dx.acCapacityW);

    auto hot = weatherAt(36.0, 40.0);
    double dx_t = steadyInletUnder(dx, Regime::acCompressor(0.5), hot);
    double ch_t = steadyInletUnder(ch, Regime::acCompressor(0.5), hot);
    EXPECT_LT(ch_t, dx_t + 0.5);  // at least as much cooling
}

// ---------------------------------------------------------------------------
// Sensor-fault injection
// ---------------------------------------------------------------------------

TEST(FaultInjection, StuckSensorReportsFrozenValue)
{
    plant::Plant plant(plant::PlantConfig::parasol(), 3);
    plant.initializeSteadyState(weatherAt(15.0, 50.0), 6.0);
    plant.injectStuckSensor(2, 42.5);
    auto sensors = plant.readSensors();
    EXPECT_DOUBLE_EQ(sensors.podInletC[2], 42.5);
    // True state is unaffected.
    EXPECT_LT(plant.truePodInletC(2), 35.0);
    plant.clearSensorFaults();
    EXPECT_LT(plant.readSensors().podInletC[2], 35.0);
}

TEST(FaultInjection, CoolAirSurvivesStuckSensor)
{
    // A sensor stuck HOT biases the controller toward cooling; the real
    // pods must stay within sane bounds and the run must not blow up.
    Location loc = namedLocation(NamedSite::Newark);
    Climate climate = loc.makeClimate(5);
    Forecaster forecaster(climate);

    plant::PlantConfig pc = plant::PlantConfig::smoothParasol();
    plant::Plant plant(pc, 5);
    plant.injectStuckSensor(7, 31.0);

    workload::ClusterSim cluster({}, workload::facebookTrace({}));
    core::CoolAirConfig config = core::CoolAirConfig::forVersion(
        core::Version::AllNd, cooling::RegimeMenu::smooth());
    sim::CoolAirController coolair(config, sim::sharedBundle(),
                                   &forecaster);
    sim::MetricsCollector metrics({}, 8);
    sim::Engine engine(plant, cluster, coolair, climate);
    engine.setMetrics(&metrics);
    engine.runDay(160);

    for (int p = 0; p < 8; ++p) {
        EXPECT_GT(plant.truePodInletC(p), 5.0);
        EXPECT_LT(plant.truePodInletC(p), 40.0);
    }
}
