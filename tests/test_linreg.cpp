/**
 * @file
 * Tests for the least-squares fitters and model trees.
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>

#include "model/linreg.hpp"
#include "model/model_tree.hpp"
#include "util/rng.hpp"

using namespace coolair::model;
using coolair::util::Rng;

namespace {

/** Build a dataset y = 2 + 3a - b with optional noise. */
Dataset
linearData(size_t rows, double noise, uint64_t seed)
{
    Rng rng(seed);
    Dataset d;
    for (size_t i = 0; i < rows; ++i) {
        double a = rng.uniform(-5.0, 5.0);
        double b = rng.uniform(-5.0, 5.0);
        std::array<double, 3> x{1.0, a, b};
        d.addRow(x, 2.0 + 3.0 * a - b + rng.normal(0.0, noise));
    }
    return d;
}

} // anonymous namespace

TEST(FitRidge, RecoversExactLinear)
{
    Dataset d = linearData(200, 0.0, 1);
    FitReport rep;
    LinearModel m = fitRidge(d, 1e-9, &rep);
    ASSERT_TRUE(m.valid());
    EXPECT_NEAR(m.weights()[0], 2.0, 1e-6);
    EXPECT_NEAR(m.weights()[1], 3.0, 1e-6);
    EXPECT_NEAR(m.weights()[2], -1.0, 1e-6);
    EXPECT_LT(rep.rmse, 1e-6);
}

TEST(FitRidge, NoisyFitIsClose)
{
    Dataset d = linearData(2000, 0.5, 2);
    FitReport rep;
    LinearModel m = fitRidge(d, 1e-6, &rep);
    EXPECT_NEAR(m.weights()[1], 3.0, 0.05);
    EXPECT_NEAR(rep.rmse, 0.5, 0.08);
}

TEST(FitRidge, EmptyDatasetInvalid)
{
    Dataset d;
    EXPECT_FALSE(fitRidge(d).valid());
}

TEST(FitRidge, RidgeShrinksWeights)
{
    Dataset d = linearData(100, 0.1, 3);
    LinearModel loose = fitRidge(d, 1e-9);
    LinearModel stiff = fitRidge(d, 1e3);
    EXPECT_LT(std::fabs(stiff.weights()[1]),
              std::fabs(loose.weights()[1]));
}

TEST(FitRidge, HandlesCollinearFeatures)
{
    // Third feature duplicates the second: the ridge keeps the normal
    // equations solvable and predictions sane.
    Rng rng(4);
    Dataset d;
    for (int i = 0; i < 100; ++i) {
        double a = rng.uniform(-2.0, 2.0);
        std::array<double, 3> x{1.0, a, a};
        d.addRow(x, 1.0 + 4.0 * a);
    }
    LinearModel m = fitRidge(d, 1e-4);
    ASSERT_TRUE(m.valid());
    std::array<double, 3> probe{1.0, 1.5, 1.5};
    EXPECT_NEAR(m.predict(probe), 7.0, 0.05);
}

TEST(FitRobust, ResistsOutliers)
{
    Dataset d = linearData(400, 0.1, 5);
    // Corrupt 5 % of targets grossly.
    for (size_t i = 0; i < d.y.size(); i += 20)
        d.y[i] += 50.0;

    LinearModel plain = fitRidge(d);
    LinearModel robust = fitRobust(d);

    // Evaluate both on clean data.
    Dataset clean = linearData(200, 0.0, 6);
    double plain_err = evaluate(plain, clean).rmse;
    double robust_err = evaluate(robust, clean).rmse;
    EXPECT_LT(robust_err, plain_err);
}

TEST(SolveCholesky, KnownSystem)
{
    // A = [[4,2],[2,3]], b = [10, 8] -> x = [1.75, 1.5].
    std::vector<double> a{4.0, 2.0, 2.0, 3.0};
    std::vector<double> b{10.0, 8.0};
    ASSERT_TRUE(solveCholesky(a, b, 2));
    EXPECT_NEAR(b[0], 1.75, 1e-12);
    EXPECT_NEAR(b[1], 1.5, 1e-12);
}

TEST(SolveCholesky, RejectsIndefinite)
{
    std::vector<double> a{1.0, 2.0, 2.0, 1.0};  // eigenvalues 3, -1
    std::vector<double> b{1.0, 1.0};
    EXPECT_FALSE(solveCholesky(a, b, 2));
}

TEST(Dataset, RowAccessAndArity)
{
    Dataset d;
    std::array<double, 2> r0{1.0, 2.0};
    d.addRow(r0, 3.0);
    EXPECT_EQ(d.rows(), 1u);
    EXPECT_EQ(d.featureCount, 2u);
    auto row = d.row(0);
    EXPECT_DOUBLE_EQ(row[1], 2.0);
}

// ---------------------------------------------------------------------------
// Model trees
// ---------------------------------------------------------------------------

namespace {

/** y = cubic in x plus small noise, feature layout [1, x]. */
Dataset
cubicData(size_t rows, uint64_t seed)
{
    Rng rng(seed);
    Dataset d;
    for (size_t i = 0; i < rows; ++i) {
        double x = rng.uniform(0.0, 1.0);
        std::array<double, 2> f{1.0, x};
        d.addRow(f, 8.0 + 417.0 * x * x * x + rng.normal(0.0, 2.0));
    }
    return d;
}

} // anonymous namespace

TEST(ModelTree, BeatsLinearOnCubic)
{
    Dataset d = cubicData(1000, 7);
    ModelTreeConfig cfg;
    cfg.splitFeature = 1;
    cfg.maxLeaves = 5;
    cfg.minLeafRows = 30;
    ModelTree tree = ModelTree::fit(d, cfg);
    ASSERT_TRUE(tree.valid());
    EXPECT_GT(tree.leafCount(), 1u);
    EXPECT_LE(tree.leafCount(), 5u);

    LinearModel line = fitRidge(d);
    double tree_sse = 0.0, line_sse = 0.0;
    Dataset probe = cubicData(300, 8);
    for (size_t r = 0; r < probe.rows(); ++r) {
        double err_t = tree.predict(probe.row(r)) - probe.y[r];
        double err_l = line.predict(probe.row(r)) - probe.y[r];
        tree_sse += err_t * err_t;
        line_sse += err_l * err_l;
    }
    EXPECT_LT(tree_sse, line_sse * 0.5);
}

TEST(ModelTree, PredictsEndpointsOfPowerCurve)
{
    Dataset d = cubicData(2000, 9);
    ModelTreeConfig cfg;
    cfg.splitFeature = 1;
    ModelTree tree = ModelTree::fit(d, cfg);
    std::array<double, 2> lo{1.0, 0.05};
    std::array<double, 2> hi{1.0, 1.0};
    EXPECT_NEAR(tree.predict(lo), 8.0, 8.0);
    EXPECT_NEAR(tree.predict(hi), 425.0, 20.0);
}

TEST(ModelTree, SingleLeafWhenDataIsLinear)
{
    Dataset d = linearData(500, 0.05, 10);
    ModelTreeConfig cfg;
    cfg.splitFeature = 1;
    ModelTree tree = ModelTree::fit(d, cfg);
    EXPECT_EQ(tree.leafCount(), 1u);
}

TEST(ModelTree, ThresholdsSorted)
{
    Dataset d = cubicData(1500, 11);
    ModelTreeConfig cfg;
    cfg.splitFeature = 1;
    cfg.maxLeaves = 6;
    ModelTree tree = ModelTree::fit(d, cfg);
    const auto &th = tree.thresholds();
    EXPECT_TRUE(std::is_sorted(th.begin(), th.end()));
    EXPECT_EQ(th.size(), tree.leafCount() - 1);
}
