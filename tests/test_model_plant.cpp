/**
 * @file
 * Tests for the Real-Sim/Smooth-Sim learned-model plant and the
 * controller adapters.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "environment/location.hpp"
#include "sim/controller.hpp"
#include "sim/model_plant.hpp"
#include "sim/experiment.hpp"
#include "workload/cluster.hpp"
#include "workload/trace_gen.hpp"

using namespace coolair;
using namespace coolair::sim;
using cooling::Regime;
using util::SimTime;

namespace {

plant::SensorReadings
initialReadings(double temp)
{
    plant::SensorReadings s;
    s.podInletC.assign(8, temp);
    s.coldAisleAbsHumidity = 8.0;
    s.outsideC = 15.0;
    s.outsideRhPercent = 50.0;
    s.outsideAbsHumidity = 6.0;
    s.itPowerW = 1500.0;
    s.dcUtilization = 1.0;
    return s;
}

environment::WeatherSample
weatherAt(double t)
{
    environment::WeatherSample w;
    w.tempC = t;
    w.rhPercent = 50.0;
    w.absHumidity = physics::absoluteHumidity(t, 50.0);
    return w;
}

} // anonymous namespace

TEST(ModelPlant, ResetInstallsState)
{
    ModelPlant mp(&sharedBundle().model, plant::PlantConfig::parasol());
    mp.reset(initialReadings(26.5));
    auto s = mp.readSensors(SimTime(0));
    for (double t : s.podInletC)
        EXPECT_DOUBLE_EQ(t, 26.5);
    EXPECT_DOUBLE_EQ(s.coldAisleAbsHumidity, 8.0);
}

TEST(ModelPlant, FreeCoolingMovesTowardOutside)
{
    ModelPlant mp(&sharedBundle().model, plant::PlantConfig::parasol());
    mp.reset(initialReadings(30.0));
    plant::PodLoad load = plant::PodLoad::uniform(8, 8, 0.5);
    for (int i = 0; i < 20; ++i)
        mp.step(weatherAt(10.0), load, Regime::freeCooling(0.8));
    auto s = mp.readSensors(SimTime(20 * 120));
    EXPECT_LT(s.avgPodInletC(), 22.0);
    EXPECT_GT(s.avgPodInletC(), 8.0);
}

TEST(ModelPlant, ClosedWarmsUnderLoad)
{
    ModelPlant mp(&sharedBundle().model, plant::PlantConfig::parasol());
    mp.reset(initialReadings(20.0));
    plant::PodLoad load = plant::PodLoad::uniform(8, 8, 0.9);
    for (int i = 0; i < 20; ++i)
        mp.step(weatherAt(15.0), load, Regime::closed());
    EXPECT_GT(mp.readSensors(SimTime(0)).avgPodInletC(), 21.0);
}

TEST(ModelPlant, GuardrailsBoundPerStepMoves)
{
    ModelPlant mp(&sharedBundle().model, plant::PlantConfig::parasol());
    mp.reset(initialReadings(45.0));  // extreme start
    plant::PodLoad load = plant::PodLoad::uniform(8, 8, 0.5);
    auto before = mp.readSensors(SimTime(0)).podInletC;
    mp.step(weatherAt(0.0), load, Regime::acCompressor(1.0));
    auto after = mp.readSensors(SimTime(120)).podInletC;
    for (size_t p = 0; p < 8; ++p) {
        EXPECT_LE(std::fabs(after[p] - before[p]), 6.0 + 1e-9);
        EXPECT_GE(after[p], 8.0);
        EXPECT_LE(after[p], 55.0);
    }
}

TEST(ModelPlant, PowerFollowsRegime)
{
    ModelPlant mp(&sharedBundle().model, plant::PlantConfig::parasol());
    mp.reset(initialReadings(25.0));
    plant::PodLoad load = plant::PodLoad::uniform(8, 8, 0.5);

    mp.step(weatherAt(15.0), load, Regime::closed());
    EXPECT_NEAR(mp.readSensors(SimTime(0)).coolingPowerW, 0.0, 1.0);

    mp.step(weatherAt(15.0), load, Regime::acCompressor(1.0));
    EXPECT_GT(mp.readSensors(SimTime(0)).coolingPowerW, 1500.0);
}

TEST(BaselineController, UsesWarmestPodAsControlSensor)
{
    BaselineController ctrl;
    plant::SensorReadings s = initialReadings(20.0);
    s.outsideC = 10.0;
    // All pods cool: TKS (SP 30, P 5) closes the container.
    auto d1 = ctrl.control(s, {}, plant::PodLoad::uniform(8, 8, 0.5),
                           SimTime(0));
    EXPECT_EQ(d1.regime.mode, cooling::Mode::Closed);
    EXPECT_FALSE(d1.hasPlan);

    // One hot pod pushes the control sensor into the proportional band.
    s.podInletC[3] = 28.0;
    auto d2 = ctrl.control(s, {}, plant::PodLoad::uniform(8, 8, 0.5),
                           SimTime(60));
    EXPECT_EQ(d2.regime.mode, cooling::Mode::FreeCooling);
}

TEST(CoolAirController, EmitsPlanAndEpoch)
{
    environment::Climate climate =
        environment::namedLocation(environment::NamedSite::Newark)
            .makeClimate(3);
    environment::Forecaster forecaster(climate);
    core::CoolAirConfig cfg = core::CoolAirConfig::forVersion(
        core::Version::AllNd, cooling::RegimeMenu::smooth());
    CoolAirController ctrl(cfg, sharedBundle(), &forecaster);

    EXPECT_EQ(ctrl.epochS(), 600);
    EXPECT_STREQ(ctrl.name(), "CoolAir");

    workload::WorkloadStatus status;
    status.demandServers = 20;
    auto d = ctrl.control(initialReadings(26.0), status,
                          plant::PodLoad::uniform(8, 8, 0.5),
                          SimTime::fromCalendar(100, 6));
    EXPECT_TRUE(d.hasPlan);
    EXPECT_GE(d.plan.targetActiveServers, 8);
}

TEST(ModelSimRunner, SampleHookFiresPerStep)
{
    environment::Climate climate =
        environment::namedLocation(environment::NamedSite::Newark)
            .makeClimate(3);
    ModelPlant mp(&sharedBundle().model, plant::PlantConfig::parasol());
    workload::ClusterSim cluster({}, workload::steadyTrace(0.3, {}));
    BaselineController ctrl;
    ModelSimRunner runner(mp, cluster, ctrl, climate);

    int samples = 0;
    runner.setSampleHook(
        [&](const plant::SensorReadings &) { ++samples; });
    runner.runDay(100, initialReadings(24.0));
    EXPECT_EQ(samples, 720);  // one 2-minute step at a time for a day
}
