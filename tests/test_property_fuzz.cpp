/**
 * @file
 * Property and fuzz tests: invariants that must hold for any regime
 * sequence, any compute plan, and any weather — boundedness, energy
 * sanity, and bookkeeping consistency.
 */

#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <string>

#include "cooling/tks.hpp"
#include "environment/location.hpp"
#include "physics/psychrometrics.hpp"
#include "plant/parasol.hpp"
#include "sim/spec_io.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "workload/cluster.hpp"
#include "workload/trace_gen.hpp"

using namespace coolair;
using namespace coolair::plant;
using cooling::Regime;
using util::Rng;
using util::SimTime;

namespace {

environment::WeatherSample
weatherAt(double temp_c, double rh)
{
    environment::WeatherSample w;
    w.tempC = temp_c;
    w.rhPercent = rh;
    w.absHumidity = physics::absoluteHumidity(temp_c, rh);
    return w;
}

Regime
randomRegime(Rng &rng)
{
    double r = rng.uniform();
    if (r < 0.3)
        return Regime::closed();
    if (r < 0.65)
        return Regime::freeCooling(rng.uniform(0.0, 1.0));
    if (r < 0.8)
        return Regime::acFanOnly();
    if (r < 0.9)
        return Regime::acCompressor(rng.uniform(0.1, 1.0));
    return Regime::freeCoolingEvaporative(rng.uniform(0.1, 1.0));
}

} // anonymous namespace

/**
 * Property: under arbitrary regime/weather/load sequences, the plant
 * stays within physical bounds and never produces NaNs.
 */
class PlantFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(PlantFuzz, StateStaysPhysical)
{
    Rng rng{uint64_t(GetParam()) * 977 + 13};
    PlantConfig pc = GetParam() % 2 ? PlantConfig::smoothParasolEvaporative()
                                    : PlantConfig::parasol();
    Plant plant(pc, uint64_t(GetParam()));
    plant.initializeSteadyState(weatherAt(15.0, 50.0), 6.0);

    Regime regime = Regime::closed();
    PodLoad load = PodLoad::uniform(8, 8, 0.5);
    double outside = 15.0;

    for (int step = 0; step < 2000; ++step) {
        if (rng.bernoulli(0.05))
            regime = randomRegime(rng);
        if (rng.bernoulli(0.05)) {
            load = PodLoad::uniform(8, 8, rng.uniform(0.0, 1.0));
            for (auto &a : load.activeServers)
                a = int(rng.uniformInt(0, 8));
        }
        outside = util::clamp(outside + rng.normal(0.0, 0.3), -30.0, 48.0);
        double rh = rng.uniform(5.0, 100.0);

        plant.step(rng.uniform(5.0, 120.0), weatherAt(outside, rh), load,
                   regime);

        for (int p = 0; p < 8; ++p) {
            double t = plant.truePodInletC(p);
            ASSERT_TRUE(std::isfinite(t)) << "step " << step;
            ASSERT_GT(t, -40.0) << "step " << step;
            ASSERT_LT(t, 75.0) << "step " << step;
            ASSERT_TRUE(std::isfinite(plant.diskTempC(p)));
        }
        ASSERT_TRUE(std::isfinite(plant.hotAisleC()));
        ASSERT_GE(plant.coolingPowerW(), 0.0);
        ASSERT_LE(plant.coolingPowerW(), 2400.0);
        ASSERT_GE(plant.itPowerW(), 0.0);

        auto sensors = plant.readSensors();
        ASSERT_GE(sensors.coldAisleRhPercent, 0.0);
        ASSERT_LE(sensors.coldAisleRhPercent, 100.0);
        ASSERT_GT(sensors.coldAisleAbsHumidity, 0.0);
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlantFuzz, ::testing::Range(0, 6));

/**
 * Property: steady-state energy sanity — with fixed conditions, the
 * inlet temperature settles (no limit cycles in the plant itself) and
 * warmer outside air yields warmer steady inlets under free cooling.
 */
class PlantSteadyState : public ::testing::TestWithParam<double>
{
};

TEST_P(PlantSteadyState, FreeCoolingMonotoneInOutsideTemp)
{
    double outside = GetParam();
    auto run = [&](double out_c) {
        Plant plant(PlantConfig::parasol(), 1);
        plant.initializeSteadyState(weatherAt(out_c, 50.0), 6.0);
        PodLoad load = PodLoad::uniform(8, 8, 0.5);
        for (int i = 0; i < 480; ++i)
            plant.step(30.0, weatherAt(out_c, 50.0), load,
                       Regime::freeCooling(0.6));
        double sum = 0.0;
        for (int p = 0; p < 8; ++p)
            sum += plant.truePodInletC(p);
        return sum / 8.0;
    };
    double cool = run(outside);
    double warm = run(outside + 5.0);
    EXPECT_GT(warm, cool + 2.0);
    // Inlet sits above the outside air (servers add heat).
    EXPECT_GT(cool, outside);
}

INSTANTIATE_TEST_SUITE_P(OutsideTemps, PlantSteadyState,
                         ::testing::Values(-10.0, 0.0, 10.0, 20.0, 30.0));

/**
 * Fuzz: the cluster's bookkeeping stays consistent under random plans.
 */
class ClusterFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(ClusterFuzz, InvariantsUnderRandomPlans)
{
    Rng rng{uint64_t(GetParam()) * 31337 + 7};
    workload::TraceGenConfig tg;
    tg.seed = uint64_t(GetParam());
    workload::ClusterSim sim({}, workload::facebookTrace(tg));

    workload::ComputePlan plan = workload::ComputePlan::passthrough();
    int64_t last_tasks = 0;

    for (int64_t t = 0; t < util::kSecondsPerDay / 2; t += 30) {
        if (t % 600 == 0) {
            plan.manageServerStates = rng.bernoulli(0.7);
            plan.targetActiveServers = int(rng.uniformInt(0, 80));
            if (rng.bernoulli(0.3)) {
                plan.podOrder.clear();
                for (int p = 7; p >= 0; --p)
                    plan.podOrder.push_back(p);
            }
            for (auto &h : plan.hourAllowed)
                h = rng.bernoulli(0.8);
            sim.applyPlan(plan);
        }
        sim.step(SimTime(t), 30.0);

        // Invariants.
        ASSERT_GE(sim.busySlots(), 0);
        ASSERT_LE(sim.busySlots(), 128);
        int awake = sim.awakeServers();
        ASSERT_GE(awake, plan.manageServerStates ? 8 : 64);
        ASSERT_LE(awake, 64);

        auto load = sim.podLoad();
        int awake_from_pods = 0;
        for (int p = 0; p < 8; ++p) {
            ASSERT_GE(load.activeServers[size_t(p)], 0);
            ASSERT_LE(load.activeServers[size_t(p)], 8);
            ASSERT_GE(load.utilization[size_t(p)], 0.0);
            ASSERT_LE(load.utilization[size_t(p)], 1.0);
            awake_from_pods += load.activeServers[size_t(p)];
        }
        ASSERT_EQ(awake_from_pods, awake);

        auto stats = sim.stats();
        ASSERT_GE(stats.tasksCompleted, last_tasks);  // monotone
        last_tasks = stats.tasksCompleted;

        auto status = sim.status();
        ASSERT_GE(status.demandServers, 0);
        ASSERT_LE(status.demandServers, 64);
    }

    // Despite the chaos, work makes progress.
    EXPECT_GT(sim.stats().tasksCompleted, 100);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterFuzz, ::testing::Range(0, 4));

/**
 * Property: the TKS never emits an impossible regime and its fan-speed
 * law is monotone in the outside-inside gap.
 */
class TksProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(TksProperty, OutputsAlwaysValid)
{
    Rng rng{uint64_t(GetParam()) + 99};
    cooling::TksController tks(cooling::TksConfig::extendedBaseline());
    for (int i = 0; i < 2000; ++i) {
        cooling::ControlInputs in;
        in.outsideTempC = rng.uniform(-30.0, 45.0);
        in.controlSensorC = rng.uniform(0.0, 45.0);
        in.outsideRhPercent = rng.uniform(5.0, 100.0);
        in.insideRhPercent = rng.uniform(5.0, 100.0);
        in.outsideAbsHumidity = physics::absoluteHumidity(
            in.outsideTempC, in.outsideRhPercent);
        Regime r = tks.control(in);
        switch (r.mode) {
          case cooling::Mode::FreeCooling:
            ASSERT_GE(r.fanSpeed, 0.15);
            ASSERT_LE(r.fanSpeed, 1.0);
            ASSERT_FALSE(r.compressorOn);
            break;
          case cooling::Mode::AirConditioning:
          case cooling::Mode::Closed:
            ASSERT_DOUBLE_EQ(r.normalized().fanSpeed, 0.0);
            break;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TksProperty, ::testing::Range(0, 3));

/**
 * Property: the spec text form is lossless — parse(format(spec)) == spec
 * for any spec, named site or custom climate, with or without the
 * optional tuning overrides.
 */
class SpecRoundTrip : public ::testing::TestWithParam<int>
{
};

namespace {

sim::ExperimentSpec
randomSpec(Rng &rng)
{
    sim::ExperimentSpec spec;

    if (rng.bernoulli(0.5)) {
        const auto &sites = environment::allNamedSites();
        spec.location = environment::namedLocation(
            sites[size_t(rng.uniformInt(0, int64_t(sites.size()) - 1))]);
    } else {
        spec.location.name =
            "fuzz-site-" + std::to_string(rng.uniformInt(0, 999));
        spec.location.latitude = rng.uniform(-90.0, 90.0);
        spec.location.longitude = rng.uniform(-180.0, 180.0);
        environment::ClimateParams &cl = spec.location.climate;
        cl.annualMeanC = rng.uniform(-10.0, 30.0);
        cl.seasonalAmplitudeC = rng.uniform(0.0, 20.0);
        cl.diurnalAmplitudeC = rng.uniform(0.0, 12.0);
        cl.synopticAmplitudeC = rng.uniform(0.0, 6.0);
        cl.dewPointDepressionC = rng.uniform(1.0, 20.0);
        cl.dewPointVariabilityC = rng.uniform(0.0, 5.0);
        cl.southernHemisphere = rng.bernoulli(0.5);
        cl.seasonalPeakDay = rng.uniform(0.0, 365.0);
        cl.diurnalPeakHour = rng.uniform(0.0, 24.0);
    }

    const auto &systems = sim::allSystemIds();
    spec.system =
        systems[size_t(rng.uniformInt(0, int64_t(systems.size()) - 1))];
    spec.style = rng.bernoulli(0.5) ? cooling::ActuatorStyle::Abrupt
                                    : cooling::ActuatorStyle::Smooth;
    spec.variant = std::array{sim::PlantVariant::Standard,
                              sim::PlantVariant::Evaporative,
                              sim::PlantVariant::Chiller}[size_t(
        rng.uniformInt(0, 2))];
    spec.workload = std::array{sim::WorkloadKind::Facebook,
                               sim::WorkloadKind::Nutch,
                               sim::WorkloadKind::FacebookProfile,
                               sim::WorkloadKind::SteadyHalf}[size_t(
        rng.uniformInt(0, 3))];
    spec.runKind = std::array{sim::RunKind::YearWeekly,
                              sim::RunKind::SingleDay,
                              sim::RunKind::DayRange}[size_t(
        rng.uniformInt(0, 2))];

    spec.maxTempC = rng.uniform(20.0, 35.0);
    spec.forecastError.biasC = rng.uniform(-5.0, 5.0);
    spec.forecastError.noiseStddevC = rng.uniform(0.0, 3.0);
    spec.weeks = int(rng.uniformInt(1, 52));
    spec.day = int(rng.uniformInt(0, 364));
    spec.startDay = int(rng.uniformInt(0, 180));
    spec.endDay = spec.startDay + int(rng.uniformInt(1, 14));
    spec.physicsStepS = rng.uniform(5.0, 120.0);
    spec.seed = rng.next();
    spec.weatherCache = rng.bernoulli(0.5);

    if (rng.bernoulli(0.3))
        spec.traceCsvPath = "/tmp/fuzz-trace.csv";
    spec.resultCache = rng.bernoulli(0.8);
    if (rng.bernoulli(0.3))
        spec.cacheDirPath =
            "/tmp/fuzz-cache-" + std::to_string(rng.uniformInt(0, 9));
    if (rng.bernoulli(0.3))
        spec.bandWidthC = rng.uniform(1.0, 10.0);
    if (rng.bernoulli(0.3))
        spec.bandOffsetC = rng.uniform(0.0, 12.0);
    if (rng.bernoulli(0.3))
        spec.switchPenalty = rng.uniform(0.0, 5.0);
    if (rng.bernoulli(0.3))
        spec.sleepDecayPerEpoch = rng.uniform(0.0, 1.0);
    if (rng.bernoulli(0.3))
        spec.horizonSteps = int(rng.uniformInt(1, 16));
    if (rng.bernoulli(0.3))
        spec.batch = int(rng.uniformInt(1, 64));
    return spec;
}

} // anonymous namespace

TEST_P(SpecRoundTrip, ParseFormatIdentity)
{
    Rng rng{uint64_t(GetParam()) * 7919 + 3};
    for (int iter = 0; iter < 64; ++iter) {
        sim::ExperimentSpec spec = randomSpec(rng);
        std::string text = sim::formatSpec(spec);
        sim::ExperimentSpec parsed;
        ASSERT_NO_THROW(parsed = sim::parseSpec(text)) << text;
        ASSERT_TRUE(parsed == spec) << text;
        // Formatting is deterministic, so format(parse(.)) is stable too.
        ASSERT_EQ(text, sim::formatSpec(parsed));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpecRoundTrip, ::testing::Range(0, 4));
