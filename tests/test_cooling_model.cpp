/**
 * @file
 * Tests for the CoolingModel bank: key fallback, AC interpolation, and
 * power prediction.
 */

#include <gtest/gtest.h>

#include <array>

#include "model/cooling_model.hpp"

using namespace coolair;
using namespace coolair::model;
using cooling::Regime;
using cooling::RegimeClass;
using cooling::TransitionKey;

namespace {

/** A model that always predicts a constant. */
LinearModel
constantModel(double value)
{
    std::vector<double> w(TempFeatures::kCount, 0.0);
    w[0] = value;
    return LinearModel(std::move(w));
}

LinearModel
constantHumidityModel(double value)
{
    std::vector<double> w(HumidityFeatures::kCount, 0.0);
    w[0] = value;
    return LinearModel(std::move(w));
}

CoolingModelConfig
cfg2()
{
    CoolingModelConfig c;
    c.numPods = 2;
    return c;
}

} // anonymous namespace

TEST(CoolingModel, PersistenceFallbackWhenEmpty)
{
    CoolingModel m(cfg2());
    TempInputs in;
    in.insideC = 27.5;
    double pred = m.predictTemp(Regime::closed(), Regime::freeCooling(0.5),
                                0, in);
    EXPECT_DOUBLE_EQ(pred, 27.5);  // no model anywhere: persistence
}

TEST(CoolingModel, SteadyFallbackForUnseenTransition)
{
    CoolingModel m(cfg2());
    // Only the steady FcMid model exists.
    m.setTempModel({RegimeClass::FcMid, RegimeClass::FcMid}, 0,
                   constantModel(21.0));
    TempInputs in;
    in.insideC = 30.0;
    // Transition Closed->FcMid falls back to steady FcMid.
    double pred = m.predictTemp(Regime::closed(), Regime::freeCooling(0.5),
                                0, in);
    EXPECT_DOUBLE_EQ(pred, 21.0);
}

TEST(CoolingModel, ExactTransitionPreferred)
{
    CoolingModel m(cfg2());
    m.setTempModel({RegimeClass::FcMid, RegimeClass::FcMid}, 0,
                   constantModel(21.0));
    m.setTempModel({RegimeClass::Closed, RegimeClass::FcMid}, 0,
                   constantModel(24.0));
    TempInputs in;
    double pred = m.predictTemp(Regime::closed(), Regime::freeCooling(0.5),
                                0, in);
    EXPECT_DOUBLE_EQ(pred, 24.0);
    // Steady usage still hits the steady model.
    double steady = m.predictTemp(Regime::freeCooling(0.5),
                                  Regime::freeCooling(0.5), 0, in);
    EXPECT_DOUBLE_EQ(steady, 21.0);
}

TEST(CoolingModel, AcCompressorSpeedInterpolates)
{
    // §5.1: the smooth AC's temperature is interpolated between the
    // compressor-on and compressor-off models.
    CoolingModel m(cfg2());
    m.setTempModel({RegimeClass::AcFanOnly, RegimeClass::AcFanOnly}, 0,
                   constantModel(32.0));
    m.setTempModel({RegimeClass::AcCompressor, RegimeClass::AcCompressor},
                   0, constantModel(20.0));
    TempInputs in;

    double half = m.predictTemp(Regime::acFanOnly(),
                                Regime::acCompressor(0.5), 0, in);
    EXPECT_NEAR(half, 26.0, 1e-9);

    double quarter = m.predictTemp(Regime::acFanOnly(),
                                   Regime::acCompressor(0.25), 0, in);
    EXPECT_NEAR(quarter, 29.0, 1e-9);

    // Full speed hits the compressor model directly.
    double full = m.predictTemp(Regime::acFanOnly(),
                                Regime::acCompressor(1.0), 0, in);
    EXPECT_NEAR(full, 20.0, 1e-9);
}

TEST(CoolingModel, HumidityInterpolatesToo)
{
    CoolingModel m(cfg2());
    m.setHumidityModel({RegimeClass::AcFanOnly, RegimeClass::AcFanOnly},
                       constantHumidityModel(12.0));
    m.setHumidityModel(
        {RegimeClass::AcCompressor, RegimeClass::AcCompressor},
        constantHumidityModel(8.0));
    HumidityInputs in;
    double half = m.predictHumidity(Regime::acFanOnly(),
                                    Regime::acCompressor(0.5), in);
    EXPECT_NEAR(half, 10.0, 1e-9);
}

TEST(CoolingModel, DefaultPowerModelMatchesParasol)
{
    CoolingModel m(cfg2());
    EXPECT_DOUBLE_EQ(m.predictCoolingPower(Regime::closed()), 0.0);
    EXPECT_NEAR(m.predictCoolingPower(Regime::freeCooling(1.0)), 425.0,
                0.5);
    EXPECT_NEAR(m.predictCoolingPower(Regime::acFanOnly()), 135.0, 0.5);
    EXPECT_NEAR(m.predictCoolingPower(Regime::acCompressor(1.0)), 2200.0,
                1.0);
    // Smooth AC: fan 1/4 of unit power, compressor linear (§5.1).
    EXPECT_NEAR(m.predictCoolingPower(Regime::acCompressor(0.5)),
                0.25 * 2200.0 + 0.75 * 2200.0 * 0.5, 1.0);
}

TEST(CoolingModel, FittedModelCount)
{
    CoolingModel m(cfg2());
    EXPECT_EQ(m.fittedTempModels(), 0u);
    m.setTempModel({RegimeClass::Closed, RegimeClass::Closed}, 0,
                   constantModel(20.0));
    m.setTempModel({RegimeClass::Closed, RegimeClass::Closed}, 1,
                   constantModel(20.0));
    EXPECT_EQ(m.fittedTempModels(), 2u);
    EXPECT_TRUE(
        m.hasTempModel({RegimeClass::Closed, RegimeClass::Closed}, 0));
    EXPECT_FALSE(
        m.hasTempModel({RegimeClass::FcLow, RegimeClass::FcLow}, 0));
}

TEST(CoolingModel, UsesFeatureValues)
{
    CoolingModel m(cfg2());
    // Weight only the inside-temperature feature: y = 0.9 * Tin.
    std::vector<double> w(TempFeatures::kCount, 0.0);
    w[1] = 0.9;
    m.setTempModel({RegimeClass::Closed, RegimeClass::Closed}, 0,
                   LinearModel(std::move(w)));
    TempInputs in;
    in.insideC = 30.0;
    double pred =
        m.predictTemp(Regime::closed(), Regime::closed(), 0, in);
    EXPECT_NEAR(pred, 27.0, 1e-9);
}
