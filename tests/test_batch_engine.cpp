/**
 * @file
 * Tests for the lane-batched simulation engine (sim/batch_engine.hpp)
 * and its sweep integration: the batched path must reproduce the scalar
 * oracle's Summary metrics within the DESIGN.md §10 tolerance across
 * every named climate and plant variant, ragged batches must behave
 * like full ones, batched sweeps must be deterministic at any thread
 * count, and a failing lane must neither reorder nor drop the others.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include "environment/location.hpp"
#include "sim/batch_engine.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"

using namespace coolair;
using namespace coolair::sim;

namespace {

/**
 * The documented batched-vs-scalar tolerance (DESIGN.md §10): each
 * Summary metric agrees within 2% relative or 0.02 absolute, whichever
 * is larger.  In practice runs agree to far better than this — the
 * plant kernels are bit-identical and only a near-tie in candidate
 * scores (last-ulp reassociation in the batched scorer) can diverge a
 * trajectory — but the contract is what the engine promises.
 */
constexpr double kRelTol = 0.02;
constexpr double kAbsTol = 0.02;

void
expectMetricClose(double batched, double scalar, const char *metric,
                  const std::string &what)
{
    const double tol = std::max(kAbsTol, kRelTol * std::fabs(scalar));
    EXPECT_NEAR(batched, scalar, tol) << what << ": " << metric;
}

void
expectSummaryClose(const Summary &batched, const Summary &scalar,
                   const std::string &what)
{
    expectMetricClose(batched.avgViolationC, scalar.avgViolationC,
                      "avgViolationC", what);
    expectMetricClose(batched.avgWorstDailyRangeC,
                      scalar.avgWorstDailyRangeC, "avgWorstDailyRangeC",
                      what);
    expectMetricClose(batched.maxWorstDailyRangeC,
                      scalar.maxWorstDailyRangeC, "maxWorstDailyRangeC",
                      what);
    expectMetricClose(batched.pue, scalar.pue, "pue", what);
    expectMetricClose(batched.itKwh, scalar.itKwh, "itKwh", what);
    expectMetricClose(batched.coolingKwh, scalar.coolingKwh, "coolingKwh",
                      what);
    expectMetricClose(batched.humidityViolationFrac,
                      scalar.humidityViolationFrac, "humidityViolationFrac",
                      what);
    expectMetricClose(batched.rateViolationFrac, scalar.rateViolationFrac,
                      "rateViolationFrac", what);
    expectMetricClose(batched.avgMaxInletC, scalar.avgMaxInletC,
                      "avgMaxInletC", what);
    EXPECT_EQ(batched.days, scalar.days) << what << ": days";
}

/** One lane spec: a short 2-week year sample, coarse physics step. */
ExperimentSpec
laneSpec(environment::NamedSite site, SystemId system,
         cooling::ActuatorStyle style, PlantVariant variant, int batch)
{
    ExperimentSpec spec;
    spec.location = environment::namedLocation(site);
    spec.system = system;
    spec.style = style;
    spec.variant = variant;
    spec.workload = WorkloadKind::FacebookProfile;
    spec.weeks = 2;
    spec.physicsStepS = 120.0;
    spec.batch = batch;
    spec.seed = ExperimentRunner::deriveSeed(
        11, size_t(site), spec.location.name);
    return spec;
}

} // anonymous namespace

TEST(BatchShapeKey, IgnoresPerLaneFieldsOnly)
{
    ExperimentSpec a = laneSpec(environment::NamedSite::Newark,
                                SystemId::AllNd,
                                cooling::ActuatorStyle::Smooth,
                                PlantVariant::Standard, 4);
    ExperimentSpec b = a;
    b.location = environment::namedLocation(environment::NamedSite::Chad);
    b.seed = 999;
    b.cacheDirPath = "/tmp/some-cache";
    b.reportJsonPath = "/tmp/report.json";
    EXPECT_EQ(batchShapeKey(a), batchShapeKey(b));

    ExperimentSpec c = a;
    c.weeks = 4;
    EXPECT_NE(batchShapeKey(a), batchShapeKey(c));

    ExperimentSpec d = a;
    d.style = cooling::ActuatorStyle::Abrupt;
    EXPECT_NE(batchShapeKey(a), batchShapeKey(d));

    ExperimentSpec e = a;
    e.batch = 8;
    EXPECT_NE(batchShapeKey(a), batchShapeKey(e));
}

/**
 * The tentpole's oracle lock: every named climate, through each plant
 * shape the paper exercises (abrupt Parasol, smooth units, smooth with
 * the evaporative pre-cooler, smooth with the chiller loop), batched
 * five lanes at a time, must match its scalar run within tolerance.
 */
TEST(BatchedEngine, MatchesScalarOracleAcrossClimatesAndVariants)
{
    struct Shape
    {
        const char *name;
        cooling::ActuatorStyle style;
        PlantVariant variant;
    };
    const Shape shapes[] = {
        {"abrupt", cooling::ActuatorStyle::Abrupt, PlantVariant::Standard},
        {"smooth", cooling::ActuatorStyle::Smooth, PlantVariant::Standard},
        {"evap", cooling::ActuatorStyle::Smooth, PlantVariant::Evaporative},
        {"chiller", cooling::ActuatorStyle::Smooth, PlantVariant::Chiller},
    };

    for (const Shape &shape : shapes) {
        std::vector<ExperimentSpec> specs;
        for (environment::NamedSite site : environment::allNamedSites())
            specs.push_back(laneSpec(site, SystemId::AllNd, shape.style,
                                     shape.variant, 5));

        std::vector<LaneResult> lanes = runBatchedGroup(specs, 5);
        ASSERT_EQ(lanes.size(), specs.size());

        for (size_t i = 0; i < specs.size(); ++i) {
            ASSERT_TRUE(lanes[i].ok)
                << shape.name << " lane " << i << ": " << lanes[i].error;
            ExperimentSpec scalar = specs[i];
            scalar.batch = 0;
            ExperimentResult oracle = runExperiment(scalar);
            const std::string what = std::string(shape.name) + " / " +
                                     specs[i].location.name;
            expectSummaryClose(lanes[i].result.system, oracle.system,
                               what + " (system)");
            expectSummaryClose(lanes[i].result.outside, oracle.outside,
                               what + " (outside)");
        }
    }
}

/** A batch narrower than the requested width runs correctly and is
    counted as a ragged tail. */
TEST(BatchedEngine, RaggedBatchMatchesOracle)
{
    std::vector<ExperimentSpec> specs = {
        laneSpec(environment::NamedSite::Newark, SystemId::AllNd,
                 cooling::ActuatorStyle::Smooth, PlantVariant::Standard, 8),
        laneSpec(environment::NamedSite::Iceland, SystemId::AllNd,
                 cooling::ActuatorStyle::Smooth, PlantVariant::Standard, 8),
        laneSpec(environment::NamedSite::Singapore, SystemId::AllNd,
                 cooling::ActuatorStyle::Smooth, PlantVariant::Standard, 8),
    };

    BatchedEngine engine(specs, 8);
    ASSERT_EQ(engine.lanes(), 3);
    std::vector<LaneResult> lanes = engine.run();
    EXPECT_EQ(engine.stats().raggedTailLanes, 3);
    EXPECT_GT(engine.stats().lanesStepped, 0);

    for (size_t i = 0; i < specs.size(); ++i) {
        ASSERT_TRUE(lanes[i].ok) << lanes[i].error;
        ExperimentSpec scalar = specs[i];
        scalar.batch = 0;
        ExperimentResult oracle = runExperiment(scalar);
        expectSummaryClose(lanes[i].result.system, oracle.system,
                           "ragged " + specs[i].location.name);
    }
}

/** batch=1 through the public runExperiment entry point routes through
    the batched engine and still honors the tolerance contract. */
TEST(BatchedEngine, SingleLaneViaRunExperiment)
{
    ExperimentSpec spec =
        laneSpec(environment::NamedSite::Santiago, SystemId::AllNd,
                 cooling::ActuatorStyle::Smooth, PlantVariant::Standard, 1);
    ExperimentResult batched = runExperiment(spec);
    spec.batch = 0;
    ExperimentResult oracle = runExperiment(spec);
    expectSummaryClose(batched.system, oracle.system, "single-lane");
}

/**
 * Batched sweeps are deterministic at any worker count: grouping and
 * chunking derive from spec order and shape keys, never scheduling, so
 * an 8-thread sweep reproduces a serial one bit for bit.
 */
TEST(BatchedSweep, ThreadCountDoesNotChangeResults)
{
    std::vector<ExperimentSpec> specs;
    for (environment::NamedSite site : environment::allNamedSites()) {
        specs.push_back(laneSpec(site, SystemId::Baseline,
                                 cooling::ActuatorStyle::Smooth,
                                 PlantVariant::Standard, 4));
        specs.push_back(laneSpec(site, SystemId::AllNd,
                                 cooling::ActuatorStyle::Smooth,
                                 PlantVariant::Standard, 4));
    }

    RunnerConfig serial_config;
    serial_config.threads = 1;
    SweepOutcome serial = ExperimentRunner(serial_config).run(specs);
    ASSERT_TRUE(serial.allOk());

    RunnerConfig parallel_config;
    parallel_config.threads = 8;
    SweepOutcome parallel = ExperimentRunner(parallel_config).run(specs);
    ASSERT_TRUE(parallel.allOk());

    ASSERT_EQ(serial.results.size(), parallel.results.size());
    for (size_t i = 0; i < specs.size(); ++i)
        EXPECT_EQ(serial.results[i], parallel.results[i]) << "spec " << i;
}

/**
 * Fault injection: a lane whose construction fails (trace output is
 * unsupported in the batched engine) is reported at its original spec
 * index while every other lane of its batch completes.  Failed lanes
 * are neither dropped nor do they shift the indexing of the rest.
 */
TEST(BatchedSweep, FailedLaneKeepsOthersAndIndices)
{
    std::vector<ExperimentSpec> specs;
    for (environment::NamedSite site : environment::allNamedSites())
        specs.push_back(laneSpec(site, SystemId::Baseline,
                                 cooling::ActuatorStyle::Smooth,
                                 PlantVariant::Standard, 3));
    ASSERT_EQ(specs.size(), 5u);
    specs[2].traceCsvPath = "/nonexistent-dir/should-not-open.csv";

    RunnerConfig config;
    config.threads = 2;
    SweepOutcome outcome = ExperimentRunner(config).run(specs);

    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures[0].index, 2u);
    EXPECT_FALSE(outcome.failures[0].message.empty());
    EXPECT_EQ(outcome.failures[0].spec.location.name,
              specs[2].location.name);

    for (size_t i = 0; i < specs.size(); ++i) {
        if (i == 2) {
            EXPECT_FALSE(outcome.ok(i));
            continue;
        }
        EXPECT_TRUE(outcome.ok(i)) << "spec " << i;
        EXPECT_GT(outcome.results[i].system.days, 0u) << "spec " << i;
        // The surviving lanes' results are the same the spec produces
        // in a batch without the poisoned lane.
        ExperimentResult solo = runBatchedExperiment(specs[i]);
        EXPECT_EQ(outcome.results[i], solo) << "spec " << i;
    }
}

/** A whole-batch failure path: runBatchedExperiment on a failing lane
    throws instead of returning a default result. */
TEST(BatchedEngine, SingleLaneFailureThrows)
{
    ExperimentSpec spec =
        laneSpec(environment::NamedSite::Newark, SystemId::Baseline,
                 cooling::ActuatorStyle::Smooth, PlantVariant::Standard, 1);
    spec.traceCsvPath = "/nonexistent-dir/should-not-open.csv";
    EXPECT_THROW(runBatchedExperiment(spec), std::runtime_error);
}
