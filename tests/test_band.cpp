/**
 * @file
 * Tests for daily temperature-band selection (§3.2, Figure 3).
 */

#include <gtest/gtest.h>

#include "core/band.hpp"
#include "environment/location.hpp"

using namespace coolair;
using namespace coolair::core;
using environment::Forecast;
using environment::HourlyPrediction;
using util::SimTime;

namespace {

Forecast
flatForecast(double temp_c)
{
    Forecast fc;
    for (int h = 0; h < 24; ++h) {
        fc.hours.push_back(
            {SimTime::fromCalendar(0, h), temp_c});
    }
    return fc;
}

} // anonymous namespace

TEST(BandSelection, CenteredOnForecastPlusOffset)
{
    BandConfig cfg;  // width 5, offset 8, min 10, max 30
    TemperatureBand band = selectBand(flatForecast(12.0), cfg);
    EXPECT_FALSE(band.slidToMax);
    EXPECT_FALSE(band.slidToMin);
    EXPECT_NEAR(band.center(), 20.0, 1e-9);
    EXPECT_NEAR(band.width(), 5.0, 1e-9);
    EXPECT_NEAR(band.lowC, 17.5, 1e-9);
    EXPECT_NEAR(band.highC, 22.5, 1e-9);
}

TEST(BandSelection, SlidesBelowMaxOnWarmDays)
{
    BandConfig cfg;
    TemperatureBand band = selectBand(flatForecast(28.0), cfg);
    EXPECT_TRUE(band.slidToMax);
    EXPECT_NEAR(band.highC, 30.0, 1e-9);
    EXPECT_NEAR(band.lowC, 25.0, 1e-9);
}

TEST(BandSelection, SlidesAboveMinOnColdDays)
{
    BandConfig cfg;
    TemperatureBand band = selectBand(flatForecast(-10.0), cfg);
    EXPECT_TRUE(band.slidToMin);
    EXPECT_NEAR(band.lowC, 10.0, 1e-9);
    EXPECT_NEAR(band.highC, 15.0, 1e-9);
}

TEST(BandSelection, EmptyForecastPinsBelowMax)
{
    BandConfig cfg;
    TemperatureBand band = selectBand(Forecast{}, cfg);
    EXPECT_NEAR(band.highC, 30.0, 1e-9);
}

TEST(TemperatureBand, ContainsAndViolation)
{
    TemperatureBand band = TemperatureBand::fixed(25.0, 30.0);
    EXPECT_TRUE(band.contains(25.0));
    EXPECT_TRUE(band.contains(30.0));
    EXPECT_FALSE(band.contains(24.9));
    EXPECT_DOUBLE_EQ(band.violation(27.0), 0.0);
    EXPECT_DOUBLE_EQ(band.violation(32.0), 2.0);
    EXPECT_DOUBLE_EQ(band.violation(23.0), 2.0);
}

TEST(TemporalFutility, SlidBandSkipsScheduling)
{
    BandConfig cfg;
    Forecast hot = flatForecast(28.0);
    TemperatureBand band = selectBand(hot, cfg);
    ASSERT_TRUE(band.slidToMax);
    EXPECT_TRUE(temporalSchedulingFutile(hot, band, cfg));
}

TEST(TemporalFutility, NoOverlapSkipsScheduling)
{
    BandConfig cfg;
    TemperatureBand band = TemperatureBand::fixed(17.5, 22.5);
    // Outside-air band = [9.5, 14.5]; forecast sits way below.
    Forecast cold = flatForecast(-5.0);
    EXPECT_TRUE(temporalSchedulingFutile(cold, band, cfg));
}

TEST(TemporalFutility, OverlappingDayAllowsScheduling)
{
    BandConfig cfg;
    Forecast mild = flatForecast(12.0);
    TemperatureBand band = selectBand(mild, cfg);
    EXPECT_FALSE(temporalSchedulingFutile(mild, band, cfg));
}
