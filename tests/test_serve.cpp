/**
 * @file
 * Tests for the experiment-serving layer (src/serve): wire-protocol
 * parsing and framing, the determinism contract (a served RESULT is
 * byte-identical to running the same spec directly), warm answers from
 * the persistent store, dedup-in-flight (two concurrent identical
 * submissions share exactly one simulation), error paths that must
 * never kill the daemon, and a full socket round trip.
 */

#include <gtest/gtest.h>
#include <unistd.h>

#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "sim/experiment.hpp"
#include "sim/spec_io.hpp"

using namespace coolair;
using namespace coolair::serve;
namespace fs = std::filesystem;

namespace {

/** A spec cheap enough to simulate in tens of milliseconds. */
const char kSpecLine[] =
    "run=day; day=10; site=newark; system=baseline; workload=profile; "
    "physics_step=120";

/** What the daemon must serve for kSpecLine, computed directly. */
std::string
directResultText()
{
    sim::ExperimentSpec spec =
        sim::parseSpec(specTextFromArg(kSpecLine));
    spec.resultCache = true;  // the service's normalization
    return sim::formatResult(sim::runExperiment(spec));
}

struct TempDir
{
    fs::path path;
    explicit TempDir(const std::string &tag)
    {
        path = fs::temp_directory_path() /
               ("coolair_serve_test." + tag + "." +
                std::to_string(uint64_t(::getpid())));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

} // anonymous namespace

// ------------------------------------------------------------- protocol

TEST(Protocol, ParsesEveryVerb)
{
    Request req;
    std::string err;
    ASSERT_TRUE(parseRequest("PING", req, err));
    EXPECT_EQ(req.verb, Verb::Ping);
    ASSERT_TRUE(parseRequest("SUBMIT site=newark; weeks=1", req, err));
    EXPECT_EQ(req.verb, Verb::Submit);
    EXPECT_EQ(req.arg, "site=newark; weeks=1");
    ASSERT_TRUE(parseRequest("WAIT 17", req, err));
    EXPECT_EQ(req.verb, Verb::Wait);
    EXPECT_EQ(req.arg, "17");
    ASSERT_TRUE(parseRequest("RUN site=newark", req, err));
    EXPECT_EQ(req.verb, Verb::Run);
    ASSERT_TRUE(parseRequest("STATS", req, err));
    EXPECT_EQ(req.verb, Verb::Stats);
    ASSERT_TRUE(parseRequest("SHUTDOWN\r", req, err));  // CR tolerated
    EXPECT_EQ(req.verb, Verb::Shutdown);
}

TEST(Protocol, RejectsMalformedRequests)
{
    Request req;
    std::string err;
    EXPECT_FALSE(parseRequest("", req, err));
    EXPECT_FALSE(parseRequest("FROB", req, err));         // unknown verb
    EXPECT_FALSE(parseRequest("SUBMIT", req, err));       // missing arg
    EXPECT_FALSE(parseRequest("WAIT", req, err));
    EXPECT_FALSE(parseRequest("PING extra", req, err));   // forbidden arg
    EXPECT_FALSE(parseRequest("STATS extra", req, err));
    EXPECT_FALSE(parseRequest("ping", req, err));         // case-sensitive
}

TEST(Protocol, SpecTextTurnsSemicolonsIntoLines)
{
    EXPECT_EQ(specTextFromArg("site=newark; weeks=1"),
              "site=newark\n weeks=1\n");
}

TEST(Protocol, FramesRoundTrip)
{
    const std::string frame = framePayload("RESULT", "hello\nworld\n");
    const size_t eol = frame.find('\n');
    ASSERT_NE(eol, std::string::npos);

    std::string tag, err;
    uint64_t bytes = 0;
    ASSERT_TRUE(
        parsePayloadHeader(frame.substr(0, eol), tag, bytes, err));
    EXPECT_EQ(tag, "RESULT");
    EXPECT_EQ(bytes, 12u);
    EXPECT_EQ(frame.substr(eol + 1), "hello\nworld\n");
}

TEST(Protocol, HeaderParsingIsStrict)
{
    std::string tag, err;
    uint64_t bytes = 0;
    EXPECT_FALSE(parsePayloadHeader("RESULT", tag, bytes, err));
    EXPECT_FALSE(parsePayloadHeader("RESULT 12x", tag, bytes, err));
    EXPECT_FALSE(parsePayloadHeader("RESULT -1", tag, bytes, err));
    // Wraps 64 bits: must be a framing error, not a small read.
    EXPECT_FALSE(parsePayloadHeader("RESULT 18446744073709551629", tag,
                                    bytes, err));
    // In-range for 64 bits but over the frame cap: refused before any
    // allocation.
    EXPECT_FALSE(parsePayloadHeader("RESULT 17179869184", tag, bytes, err));
}

TEST(Protocol, ErrFramesAreOneLine)
{
    EXPECT_EQ(frameErr("multi\nline\nmessage"),
              "ERR multi; line; message\n");
}

// -------------------------------------------------------------- service

TEST(Service, ServedResultMatchesDirectRunByteForByte)
{
    ExperimentService service;  // no store
    ExperimentService::Reply reply =
        service.run(specTextFromArg(kSpecLine));
    ASSERT_TRUE(reply.ok) << reply.error;
    EXPECT_EQ(reply.payload, directResultText());
}

TEST(Service, WarmRequestsComeFromTheStoreUnchanged)
{
    TempDir dir("warm");
    const std::string text = specTextFromArg(kSpecLine);

    std::string cold_payload;
    {
        ServiceConfig config;
        config.cacheDir = dir.path.string();
        ExperimentService cold(config);
        ExperimentService::Reply reply = cold.run(text);
        ASSERT_TRUE(reply.ok) << reply.error;
        cold_payload = reply.payload;
        EXPECT_EQ(cold.stats().counter("serve.runs", "").value(), 1);
    }

    // A fresh service over the same directory: the store answers, no
    // simulation runs, and the bytes are identical.
    ServiceConfig config;
    config.cacheDir = dir.path.string();
    ExperimentService warm(config);
    ExperimentService::Reply reply = warm.run(text);
    ASSERT_TRUE(reply.ok) << reply.error;
    EXPECT_EQ(reply.payload, cold_payload);
    EXPECT_EQ(reply.payload, directResultText());
    EXPECT_EQ(warm.stats().counter("serve.store_hits", "").value(), 1);
    EXPECT_EQ(warm.stats().counter("serve.runs", "").value(), 0);
}

TEST(Service, ConcurrentIdenticalSubmissionsShareOneRun)
{
    // Hold the first job open on its worker thread so the dedup window
    // is provably active when the second identical spec arrives.
    std::mutex m;
    std::condition_variable cv;
    bool started = false, release = false;

    ServiceConfig config;
    config.onJobStart = [&] {
        std::unique_lock<std::mutex> lock(m);
        started = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
    };
    ExperimentService service(config);

    const std::string text = specTextFromArg(kSpecLine);
    ExperimentService::Submitted first = service.submit(text);
    ASSERT_TRUE(first.ok) << first.error;
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return started; });
    }

    // The identical spec joins the in-flight job instead of queueing a
    // second simulation.
    ExperimentService::Submitted second = service.submit(text);
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_NE(first.ticket, second.ticket);
    EXPECT_EQ(service.stats().counter("serve.dedup_hits", "").value(), 1);

    {
        std::lock_guard<std::mutex> lock(m);
        release = true;
    }
    cv.notify_all();

    ExperimentService::Reply a = service.wait(first.ticket);
    ExperimentService::Reply b = service.wait(second.ticket);
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    EXPECT_EQ(a.payload, b.payload);
    EXPECT_EQ(service.stats().counter("serve.runs", "").value(), 1);
    EXPECT_EQ(service.stats().counter("serve.requests", "").value(), 2);
}

TEST(Service, BadSpecsAndUnknownTicketsAreErrorsNotCrashes)
{
    ExperimentService service;
    ExperimentService::Submitted bad = service.submit("site=atlantis\n");
    EXPECT_FALSE(bad.ok);
    EXPECT_NE(bad.error, "");
    EXPECT_EQ(service.stats().counter("serve.parse_errors", "").value(),
              1);

    ExperimentService::Reply reply = service.wait(999);
    EXPECT_FALSE(reply.ok);
    EXPECT_NE(reply.error.find("unknown ticket"), std::string::npos);

    // Tickets are consumed: waiting twice reports the second unknown.
    ExperimentService::Submitted ok =
        service.submit(specTextFromArg(kSpecLine));
    ASSERT_TRUE(ok.ok);
    EXPECT_TRUE(service.wait(ok.ticket).ok);
    EXPECT_FALSE(service.wait(ok.ticket).ok);
}

TEST(Service, StatsTextCoversServeAndStoreCounters)
{
    TempDir dir("stats");
    ServiceConfig config;
    config.cacheDir = dir.path.string();
    ExperimentService service(config);
    ASSERT_TRUE(service.run(specTextFromArg(kSpecLine)).ok);

    const std::string text = service.statsText();
    EXPECT_NE(text.find("serve.requests"), std::string::npos);
    EXPECT_NE(text.find("serve.latency_seconds"), std::string::npos);
    EXPECT_NE(text.find("store.stores"), std::string::npos);
}

// --------------------------------------------------------------- socket

TEST(Server, FullRoundTripOverUnixSocket)
{
    TempDir dir("socket");
    ServiceConfig service_config;
    service_config.cacheDir = (dir.path / "store").string();
    ExperimentService service(service_config);

    ServerConfig server_config;
    server_config.unixPath = (dir.path / "serve.sock").string();
    LineServer server(service, server_config);
    server.start();

    Client client = Client::connectUnix(server_config.unixPath);

    Client::Response pong = client.request("PING");
    ASSERT_TRUE(pong.ok) << pong.error;
    EXPECT_EQ(pong.status, "PONG");

    // SUBMIT + WAIT serves the byte-exact direct result.
    uint64_t ticket = 0;
    Client::Response sub =
        client.submit(kSpecLine, ticket);
    ASSERT_TRUE(sub.ok) << sub.error;
    Client::Response result =
        client.request("WAIT " + std::to_string(ticket));
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.payload, directResultText());

    // RUN answers warm now and stays byte-identical.
    Client::Response rerun = client.request(std::string("RUN ") + kSpecLine);
    ASSERT_TRUE(rerun.ok) << rerun.error;
    EXPECT_EQ(rerun.payload, result.payload);

    Client::Response bad = client.request("RUN site=atlantis");
    EXPECT_FALSE(bad.ok);

    Client::Response stats = client.request("STATS");
    ASSERT_TRUE(stats.ok) << stats.error;
    EXPECT_NE(stats.payload.find("serve.store_hits"), std::string::npos);
    EXPECT_NE(stats.payload.find("serve.connections"), std::string::npos);

    Client::Response bye = client.request("SHUTDOWN");
    ASSERT_TRUE(bye.ok) << bye.error;
    EXPECT_EQ(bye.status, "BYE");
    server.waitForShutdown();  // returns because SHUTDOWN was received
    server.stop();
}

TEST(Server, EphemeralTcpPortIsResolvedAndServes)
{
    ServerConfig server_config;
    server_config.tcpPort = 0;  // pick any free port
    ExperimentService service;
    LineServer server(service, server_config);
    server.start();
    ASSERT_GT(server.tcpPort(), 0);

    Client client = Client::connectTcp(server.tcpPort());
    Client::Response pong = client.request("PING");
    ASSERT_TRUE(pong.ok) << pong.error;
    EXPECT_EQ(pong.status, "PONG");

    Client::Response garbage = client.request("NOT A VERB");
    EXPECT_FALSE(garbage.ok);  // ERR reply, connection stays up

    Client::Response still = client.request("PING");
    ASSERT_TRUE(still.ok) << still.error;
    server.stop();
}
