/**
 * @file
 * Tests for the experiment-serving layer (src/serve): wire-protocol
 * parsing and framing, the determinism contract (a served RESULT is
 * byte-identical to running the same spec directly), warm answers from
 * the persistent store, dedup-in-flight (two concurrent identical
 * submissions share exactly one simulation), error paths that must
 * never kill the daemon, and a full socket round trip.
 */

#include <gtest/gtest.h>
#include <unistd.h>

#include <condition_variable>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>

#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "sim/batch_engine.hpp"
#include "sim/experiment.hpp"
#include "sim/spec_io.hpp"

using namespace coolair;
using namespace coolair::serve;
namespace fs = std::filesystem;

namespace {

/** A spec cheap enough to simulate in tens of milliseconds. */
const char kSpecLine[] =
    "run=day; day=10; site=newark; system=baseline; workload=profile; "
    "physics_step=120";

/** What the daemon must serve for kSpecLine, computed directly. */
std::string
directResultText()
{
    sim::ExperimentSpec spec =
        sim::parseSpec(specTextFromArg(kSpecLine));
    spec.resultCache = true;  // the service's normalization
    return sim::formatResult(sim::runExperiment(spec));
}

struct TempDir
{
    fs::path path;
    explicit TempDir(const std::string &tag)
    {
        path = fs::temp_directory_path() /
               ("coolair_serve_test." + tag + "." +
                std::to_string(uint64_t(::getpid())));
        fs::remove_all(path);
        fs::create_directories(path);
    }
    ~TempDir()
    {
        std::error_code ec;
        fs::remove_all(path, ec);
    }
};

} // anonymous namespace

// ------------------------------------------------------------- protocol

TEST(Protocol, ParsesEveryVerb)
{
    Request req;
    std::string err;
    ASSERT_TRUE(parseRequest("PING", req, err));
    EXPECT_EQ(req.verb, Verb::Ping);
    ASSERT_TRUE(parseRequest("SUBMIT site=newark; weeks=1", req, err));
    EXPECT_EQ(req.verb, Verb::Submit);
    EXPECT_EQ(req.arg, "site=newark; weeks=1");
    ASSERT_TRUE(parseRequest("WAIT 17", req, err));
    EXPECT_EQ(req.verb, Verb::Wait);
    EXPECT_EQ(req.arg, "17");
    ASSERT_TRUE(parseRequest("RUN site=newark", req, err));
    EXPECT_EQ(req.verb, Verb::Run);
    ASSERT_TRUE(parseRequest("STATS", req, err));
    EXPECT_EQ(req.verb, Verb::Stats);
    ASSERT_TRUE(parseRequest("SHUTDOWN\r", req, err));  // CR tolerated
    EXPECT_EQ(req.verb, Verb::Shutdown);
}

TEST(Protocol, RejectsMalformedRequests)
{
    Request req;
    std::string err;
    EXPECT_FALSE(parseRequest("", req, err));
    EXPECT_FALSE(parseRequest("FROB", req, err));         // unknown verb
    EXPECT_FALSE(parseRequest("SUBMIT", req, err));       // missing arg
    EXPECT_FALSE(parseRequest("WAIT", req, err));
    EXPECT_FALSE(parseRequest("PING extra", req, err));   // forbidden arg
    EXPECT_FALSE(parseRequest("STATS extra", req, err));
    EXPECT_FALSE(parseRequest("ping", req, err));         // case-sensitive
}

TEST(Protocol, SpecTextTurnsSemicolonsIntoLines)
{
    EXPECT_EQ(specTextFromArg("site=newark; weeks=1"),
              "site=newark\n weeks=1\n");
}

TEST(Protocol, FramesRoundTrip)
{
    const std::string frame = framePayload("RESULT", "hello\nworld\n");
    const size_t eol = frame.find('\n');
    ASSERT_NE(eol, std::string::npos);

    std::string tag, err;
    uint64_t bytes = 0;
    ASSERT_TRUE(
        parsePayloadHeader(frame.substr(0, eol), tag, bytes, err));
    EXPECT_EQ(tag, "RESULT");
    EXPECT_EQ(bytes, 12u);
    EXPECT_EQ(frame.substr(eol + 1), "hello\nworld\n");
}

TEST(Protocol, HeaderParsingIsStrict)
{
    std::string tag, err;
    uint64_t bytes = 0;
    EXPECT_FALSE(parsePayloadHeader("RESULT", tag, bytes, err));
    EXPECT_FALSE(parsePayloadHeader("RESULT 12x", tag, bytes, err));
    EXPECT_FALSE(parsePayloadHeader("RESULT -1", tag, bytes, err));
    // Wraps 64 bits: must be a framing error, not a small read.
    EXPECT_FALSE(parsePayloadHeader("RESULT 18446744073709551629", tag,
                                    bytes, err));
    // In-range for 64 bits but over the frame cap: refused before any
    // allocation.
    EXPECT_FALSE(parsePayloadHeader("RESULT 17179869184", tag, bytes, err));
}

TEST(Protocol, ErrFramesAreOneLine)
{
    EXPECT_EQ(frameErr("multi\nline\nmessage"),
              "ERR multi; line; message\n");
}

// -------------------------------------------------------------- service

TEST(Service, ServedResultMatchesDirectRunByteForByte)
{
    ExperimentService service;  // no store
    ExperimentService::Reply reply =
        service.run(specTextFromArg(kSpecLine));
    ASSERT_TRUE(reply.ok) << reply.error;
    EXPECT_EQ(reply.payload, directResultText());
}

TEST(Service, WarmRequestsComeFromTheStoreUnchanged)
{
    TempDir dir("warm");
    const std::string text = specTextFromArg(kSpecLine);

    std::string cold_payload;
    {
        ServiceConfig config;
        config.cacheDir = dir.path.string();
        ExperimentService cold(config);
        ExperimentService::Reply reply = cold.run(text);
        ASSERT_TRUE(reply.ok) << reply.error;
        cold_payload = reply.payload;
        EXPECT_EQ(cold.stats().counter("serve.runs", "").value(), 1);
    }

    // A fresh service over the same directory: the store answers, no
    // simulation runs, and the bytes are identical.
    ServiceConfig config;
    config.cacheDir = dir.path.string();
    ExperimentService warm(config);
    ExperimentService::Reply reply = warm.run(text);
    ASSERT_TRUE(reply.ok) << reply.error;
    EXPECT_EQ(reply.payload, cold_payload);
    EXPECT_EQ(reply.payload, directResultText());
    EXPECT_EQ(warm.stats().counter("serve.store_hits", "").value(), 1);
    EXPECT_EQ(warm.stats().counter("serve.runs", "").value(), 0);
}

TEST(Service, ConcurrentIdenticalSubmissionsShareOneRun)
{
    // Hold the first job open on its worker thread so the dedup window
    // is provably active when the second identical spec arrives.
    std::mutex m;
    std::condition_variable cv;
    bool started = false, release = false;

    ServiceConfig config;
    config.onJobStart = [&] {
        std::unique_lock<std::mutex> lock(m);
        started = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
    };
    ExperimentService service(config);

    const std::string text = specTextFromArg(kSpecLine);
    ExperimentService::Submitted first = service.submit(text);
    ASSERT_TRUE(first.ok) << first.error;
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return started; });
    }

    // The identical spec joins the in-flight job instead of queueing a
    // second simulation.
    ExperimentService::Submitted second = service.submit(text);
    ASSERT_TRUE(second.ok) << second.error;
    EXPECT_NE(first.ticket, second.ticket);
    EXPECT_EQ(service.stats().counter("serve.dedup_hits", "").value(), 1);

    {
        std::lock_guard<std::mutex> lock(m);
        release = true;
    }
    cv.notify_all();

    ExperimentService::Reply a = service.wait(first.ticket);
    ExperimentService::Reply b = service.wait(second.ticket);
    ASSERT_TRUE(a.ok) << a.error;
    ASSERT_TRUE(b.ok) << b.error;
    EXPECT_EQ(a.payload, b.payload);
    EXPECT_EQ(service.stats().counter("serve.runs", "").value(), 1);
    EXPECT_EQ(service.stats().counter("serve.requests", "").value(), 2);
}

TEST(Service, BadSpecsAndUnknownTicketsAreErrorsNotCrashes)
{
    ExperimentService service;
    ExperimentService::Submitted bad = service.submit("site=atlantis\n");
    EXPECT_FALSE(bad.ok);
    EXPECT_NE(bad.error, "");
    EXPECT_EQ(service.stats().counter("serve.parse_errors", "").value(),
              1);

    ExperimentService::Reply reply = service.wait(999);
    EXPECT_FALSE(reply.ok);
    EXPECT_NE(reply.error.find("unknown ticket"), std::string::npos);

    // Tickets are consumed: waiting twice reports the second unknown.
    ExperimentService::Submitted ok =
        service.submit(specTextFromArg(kSpecLine));
    ASSERT_TRUE(ok.ok);
    EXPECT_TRUE(service.wait(ok.ticket).ok);
    EXPECT_FALSE(service.wait(ok.ticket).ok);
}

TEST(Service, StatsTextCoversServeAndStoreCounters)
{
    TempDir dir("stats");
    ServiceConfig config;
    config.cacheDir = dir.path.string();
    ExperimentService service(config);
    ASSERT_TRUE(service.run(specTextFromArg(kSpecLine)).ok);

    const std::string text = service.statsText();
    EXPECT_NE(text.find("serve.requests"), std::string::npos);
    EXPECT_NE(text.find("serve.latency_seconds"), std::string::npos);
    EXPECT_NE(text.find("store.stores"), std::string::npos);
}

// ----------------------------------------------------------- coalescing

namespace {

/** A batch-opted spec line; distinct seeds make distinct lanes of one
    shape (batchShapeKey ignores the seed). */
std::string
batchSpecLine(int lanes, uint64_t seed)
{
    return "run=day; day=10; site=newark; system=baseline; "
           "workload=profile; physics_step=120; batch=" +
           std::to_string(lanes) + "; seed=" + std::to_string(seed);
}

/** What the daemon must serve for a coalesced lane set, computed by
    submitting the same specs directly to the batched engine. */
std::vector<std::string>
directBatchedTexts(const std::vector<std::string> &lines, int width)
{
    std::vector<sim::ExperimentSpec> specs;
    for (const std::string &line : lines) {
        sim::ExperimentSpec spec =
            sim::parseSpec(specTextFromArg(line));
        spec.resultCache = true;  // the service's normalization
        specs.push_back(spec);
    }
    std::vector<sim::LaneResult> lanes =
        sim::runBatchedGroup(specs, width);
    std::vector<std::string> texts;
    for (sim::LaneResult &lane : lanes) {
        EXPECT_TRUE(lane.ok) << lane.error;
        texts.push_back(sim::formatResult(lane.result));
    }
    return texts;
}

} // anonymous namespace

TEST(Coalesce, FullLaneSetMatchesDirectBatchedRunByteForByte)
{
    ServiceConfig config;
    config.coalesceLanes = 4;
    config.coalesceWaitMs = 60000;  // only a full lane set dispatches
    ExperimentService service(config);

    std::vector<std::string> lines;
    std::vector<uint64_t> tickets;
    for (uint64_t seed = 1; seed <= 4; ++seed) {
        lines.push_back(batchSpecLine(4, seed));
        ExperimentService::Submitted sub =
            service.submit(specTextFromArg(lines.back()));
        ASSERT_TRUE(sub.ok) << sub.error;
        tickets.push_back(sub.ticket);
    }

    const std::vector<std::string> direct = directBatchedTexts(lines, 4);
    for (size_t i = 0; i < tickets.size(); ++i) {
        ExperimentService::Reply reply = service.wait(tickets[i]);
        ASSERT_TRUE(reply.ok) << reply.error;
        EXPECT_EQ(reply.payload, direct[i]) << lines[i];
    }

    EXPECT_EQ(service.stats().counter("serve.coalesced", "").value(), 4);
    EXPECT_EQ(service.stats()
                  .counter("serve.coalesce_full_dispatches", "")
                  .value(),
              1);
    EXPECT_EQ(service.stats()
                  .counter("serve.coalesce_partial_dispatches", "")
                  .value(),
              0);
}

TEST(Coalesce, PartialLaneSetDispatchesAfterTheWindow)
{
    ServiceConfig config;
    config.coalesceLanes = 8;      // never fills: only 3 submissions
    config.coalesceWaitMs = 25.0;  // so the window must fire
    ExperimentService service(config);

    std::vector<std::string> lines;
    std::vector<uint64_t> tickets;
    for (uint64_t seed = 10; seed < 13; ++seed) {
        lines.push_back(batchSpecLine(8, seed));
        ExperimentService::Submitted sub =
            service.submit(specTextFromArg(lines.back()));
        ASSERT_TRUE(sub.ok) << sub.error;
        tickets.push_back(sub.ticket);
    }

    // Lane results are composition-independent, so a 3-lane direct run
    // of the same set must produce the same bytes the window dispatch
    // serves.
    const std::vector<std::string> direct = directBatchedTexts(lines, 8);
    for (size_t i = 0; i < tickets.size(); ++i) {
        ExperimentService::Reply reply = service.wait(tickets[i]);
        ASSERT_TRUE(reply.ok) << reply.error;
        EXPECT_EQ(reply.payload, direct[i]) << lines[i];
    }

    EXPECT_EQ(service.stats()
                  .counter("serve.coalesce_full_dispatches", "")
                  .value(),
              0);
    EXPECT_GE(service.stats()
                  .counter("serve.coalesce_partial_dispatches", "")
                  .value(),
              1);
}

TEST(Coalesce, LaneFailureResolvesOnlyItsOwnRequest)
{
    ServiceConfig config;
    config.coalesceLanes = 3;
    config.coalesceWaitMs = 60000;
    config.onLaneStart = [](const sim::ExperimentSpec &spec) {
        if (spec.seed == 2)
            throw std::runtime_error("injected lane fault");
    };
    ExperimentService service(config);

    std::vector<uint64_t> tickets;
    for (uint64_t seed = 1; seed <= 3; ++seed) {
        ExperimentService::Submitted sub = service.submit(
            specTextFromArg(batchSpecLine(3, seed)));
        ASSERT_TRUE(sub.ok) << sub.error;
        tickets.push_back(sub.ticket);
    }

    // The survivors run as a smaller batch with unchanged answers.
    const std::vector<std::string> direct = directBatchedTexts(
        {batchSpecLine(3, 1), batchSpecLine(3, 3)}, 3);

    ExperimentService::Reply first = service.wait(tickets[0]);
    ASSERT_TRUE(first.ok) << first.error;
    EXPECT_EQ(first.payload, direct[0]);

    ExperimentService::Reply poisoned = service.wait(tickets[1]);
    EXPECT_FALSE(poisoned.ok);
    EXPECT_NE(poisoned.error.find("injected lane fault"),
              std::string::npos);

    ExperimentService::Reply third = service.wait(tickets[2]);
    ASSERT_TRUE(third.ok) << third.error;
    EXPECT_EQ(third.payload, direct[1]);

    EXPECT_EQ(service.stats().counter("serve.run_failures", "").value(),
              1);
}

TEST(Coalesce, JoinedRequestTraceShowsParkDispatchAndLane)
{
    ServiceConfig config;
    config.coalesceLanes = 2;
    config.coalesceWaitMs = 60000;
    config.traceDepth = 8;
    ExperimentService service(config);

    ExperimentService::Submitted a =
        service.submit(specTextFromArg(batchSpecLine(2, 21)));
    ASSERT_TRUE(a.ok) << a.error;
    ExperimentService::Submitted b =
        service.submit(specTextFromArg(batchSpecLine(2, 22)));
    ASSERT_TRUE(b.ok) << b.error;
    ASSERT_TRUE(service.wait(a.ticket).ok);
    ASSERT_TRUE(service.wait(b.ticket).ok);

    // Both joined requests carry the scheduler's whole park ->
    // dispatch -> lane story, not just the shared engine run.
    for (uint64_t ticket : {a.ticket, b.ticket}) {
        std::string json, error;
        ASSERT_TRUE(service.traceJson(ticket, json, error)) << error;
        EXPECT_NE(json.find("serve.park"), std::string::npos);
        EXPECT_NE(json.find("serve.batch_dispatch"), std::string::npos);
        EXPECT_NE(json.find("serve.lane"), std::string::npos);
    }
}

// ----------------------------------------------------- hot cache + busy

TEST(Service, HotHitsAreServedWithoutTouchingDisk)
{
    TempDir dir("hot");
    ServiceConfig config;
    config.cacheDir = dir.path.string();
    config.hotCacheBytes = 1 << 20;
    ExperimentService service(config);
    const std::string text = specTextFromArg(kSpecLine);

    ExperimentService::Reply cold = service.run(text);
    ASSERT_TRUE(cold.ok) << cold.error;
    ASSERT_EQ(service.store()->stats().lookups, 1);  // the cold miss

    ExperimentService::Reply hot = service.run(text);
    ASSERT_TRUE(hot.ok) << hot.error;
    EXPECT_EQ(hot.payload, cold.payload);

    // The repeat was answered from RAM: no second disk lookup, no
    // store hit, no second simulation.
    EXPECT_EQ(service.store()->stats().lookups, 1);
    EXPECT_EQ(service.stats().counter("serve.store_hits", "").value(),
              0);
    EXPECT_EQ(service.stats().counter("serve.runs", "").value(), 1);
    EXPECT_NE(service.statsText().find("serve.hot_hits"),
              std::string::npos);
}

TEST(Service, BusyBacklogRejectsFreshSubmitsAndDegradesHealth)
{
    std::mutex m;
    std::condition_variable cv;
    bool started = false, release = false;

    ServiceConfig config;
    config.maxPending = 1;
    config.onJobStart = [&] {
        std::unique_lock<std::mutex> lock(m);
        started = true;
        cv.notify_all();
        cv.wait(lock, [&] { return release; });
    };
    ExperimentService service(config);

    ExperimentService::Submitted first =
        service.submit(specTextFromArg(kSpecLine));
    ASSERT_TRUE(first.ok) << first.error;
    {
        std::unique_lock<std::mutex> lock(m);
        cv.wait(lock, [&] { return started; });
    }

    // A fresh spec over the cap is refused with the structured busy
    // error, and HEALTH degrades while the backlog is saturated.
    ExperimentService::Submitted fresh = service.submit(specTextFromArg(
        "run=day; day=11; site=newark; system=baseline; "
        "workload=profile; physics_step=120"));
    EXPECT_FALSE(fresh.ok);
    EXPECT_EQ(fresh.error.rfind(kBusyPrefix, 0), 0u) << fresh.error;
    EXPECT_EQ(service.stats().counter("serve.rejected_busy", "").value(),
              1);
    EXPECT_NE(service.healthText().find("DEGRADED"), std::string::npos);

    // A duplicate of the in-flight spec still joins: joins ride the
    // existing run and never add backlog.
    ExperimentService::Submitted join =
        service.submit(specTextFromArg(kSpecLine));
    ASSERT_TRUE(join.ok) << join.error;
    EXPECT_EQ(service.stats().counter("serve.dedup_hits", "").value(),
              1);

    {
        std::lock_guard<std::mutex> lock(m);
        release = true;
    }
    cv.notify_all();
    EXPECT_TRUE(service.wait(first.ticket).ok);
    EXPECT_TRUE(service.wait(join.ticket).ok);
    EXPECT_EQ(service.healthText().find("DEGRADED"), std::string::npos);
}

// --------------------------------------------------------------- socket

TEST(Server, FullRoundTripOverUnixSocket)
{
    TempDir dir("socket");
    ServiceConfig service_config;
    service_config.cacheDir = (dir.path / "store").string();
    ExperimentService service(service_config);

    ServerConfig server_config;
    server_config.unixPath = (dir.path / "serve.sock").string();
    LineServer server(service, server_config);
    server.start();

    Client client = Client::connectUnix(server_config.unixPath);

    Client::Response pong = client.request("PING");
    ASSERT_TRUE(pong.ok) << pong.error;
    EXPECT_EQ(pong.status, "PONG");

    // SUBMIT + WAIT serves the byte-exact direct result.
    uint64_t ticket = 0;
    Client::Response sub =
        client.submit(kSpecLine, ticket);
    ASSERT_TRUE(sub.ok) << sub.error;
    Client::Response result =
        client.request("WAIT " + std::to_string(ticket));
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.payload, directResultText());

    // RUN answers warm now and stays byte-identical.
    Client::Response rerun = client.request(std::string("RUN ") + kSpecLine);
    ASSERT_TRUE(rerun.ok) << rerun.error;
    EXPECT_EQ(rerun.payload, result.payload);

    Client::Response bad = client.request("RUN site=atlantis");
    EXPECT_FALSE(bad.ok);

    Client::Response stats = client.request("STATS");
    ASSERT_TRUE(stats.ok) << stats.error;
    EXPECT_NE(stats.payload.find("serve.store_hits"), std::string::npos);
    EXPECT_NE(stats.payload.find("serve.connections"), std::string::npos);

    Client::Response bye = client.request("SHUTDOWN");
    ASSERT_TRUE(bye.ok) << bye.error;
    EXPECT_EQ(bye.status, "BYE");
    server.waitForShutdown();  // returns because SHUTDOWN was received
    server.stop();
}

TEST(Server, EphemeralTcpPortIsResolvedAndServes)
{
    ServerConfig server_config;
    server_config.tcpPort = 0;  // pick any free port
    ExperimentService service;
    LineServer server(service, server_config);
    server.start();
    ASSERT_GT(server.tcpPort(), 0);

    Client client = Client::connectTcp(server.tcpPort());
    Client::Response pong = client.request("PING");
    ASSERT_TRUE(pong.ok) << pong.error;
    EXPECT_EQ(pong.status, "PONG");

    Client::Response garbage = client.request("NOT A VERB");
    EXPECT_FALSE(garbage.ok);  // ERR reply, connection stays up

    Client::Response still = client.request("PING");
    ASSERT_TRUE(still.ok) << still.error;
    server.stop();
}
