/**
 * @file
 * Unit tests for the statistics accumulators.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"

using namespace coolair::util;

TEST(RunningStats, EmptyDefaults)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.range(), 0.0);
}

TEST(RunningStats, KnownSequence)
{
    RunningStats s;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_DOUBLE_EQ(s.range(), 7.0);
    EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStats, MergeMatchesCombined)
{
    Rng rng(1);
    RunningStats all, a, b;
    for (int i = 0; i < 1000; ++i) {
        double x = rng.normal(3.0, 2.0);
        all.add(x);
        (i % 2 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), all.count());
    EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), all.min());
    EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a, b;
    a.add(1.0);
    a.add(3.0);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStats, ResetClears)
{
    RunningStats s;
    s.add(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
}

TEST(EmpiricalCdf, FractionsAndQuantiles)
{
    EmpiricalCdf cdf;
    for (double x : {1.0, 2.0, 3.0, 4.0, 5.0})
        cdf.add(x);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(0.5), 0.0);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(3.0), 0.6);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(10.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.0), 1.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(1.0), 5.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 3.0);
}

TEST(EmpiricalCdf, UnsortedInsertOrder)
{
    EmpiricalCdf cdf;
    for (double x : {5.0, 1.0, 3.0})
        cdf.add(x);
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(1.0), 1.0 / 3.0);
    const auto &sorted = cdf.sorted();
    EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
}

TEST(EmpiricalCdf, EmptyBehaves)
{
    EmpiricalCdf cdf;
    EXPECT_DOUBLE_EQ(cdf.fractionAtOrBelow(1.0), 0.0);
    EXPECT_DOUBLE_EQ(cdf.quantile(0.5), 0.0);
}

TEST(EmpiricalCdf, MergeCombinesSamples)
{
    EmpiricalCdf a, b;
    for (double x : {1.0, 5.0})
        a.add(x);
    for (double x : {4.0, 2.0, 3.0})
        b.add(x);
    a.merge(b);
    EXPECT_EQ(a.count(), 5u);
    EXPECT_DOUBLE_EQ(a.quantile(0.5), 3.0);
    EXPECT_DOUBLE_EQ(a.fractionAtOrBelow(2.0), 0.4);
    // The source is untouched.
    EXPECT_EQ(b.count(), 3u);
}

TEST(EmpiricalCdf, MergeWithSelfDuplicates)
{
    EmpiricalCdf a;
    a.add(2.0);
    a.add(1.0);
    a.merge(a);
    EXPECT_EQ(a.count(), 4u);
    EXPECT_DOUBLE_EQ(a.fractionAtOrBelow(1.0), 0.5);
}

TEST(EmpiricalCdf, CopyIsIndependent)
{
    EmpiricalCdf a;
    a.add(3.0);
    a.add(1.0);
    EmpiricalCdf b = a;
    b.add(2.0);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(b.count(), 3u);
    EXPECT_DOUBLE_EQ(b.quantile(0.5), 2.0);
    a = b;
    EXPECT_EQ(a.count(), 3u);
}

TEST(EmpiricalCdf, ConcurrentConstReadsAreSafe)
{
    // Two threads racing the lazy sort was undefined behavior before
    // the sort was guarded; run the pattern under TSan to verify.
    EmpiricalCdf cdf;
    Rng rng(2);
    for (int i = 0; i < 4096; ++i)
        cdf.add(rng.uniform(-10.0, 10.0));

    std::vector<std::thread> readers;
    std::atomic<int> below{0};
    for (int t = 0; t < 4; ++t)
        readers.emplace_back([&cdf, &below] {
            if (cdf.fractionAtOrBelow(0.0) < 0.75)
                ++below;
            (void)cdf.quantile(0.25);
        });
    for (auto &t : readers)
        t.join();
    EXPECT_EQ(below.load(), 4);
}

TEST(DailyRangeTracker, SingleDaySingleSensor)
{
    DailyRangeTracker tracker(1);
    tracker.record(0, 0, 20.0);
    tracker.record(0, 0, 28.0);
    tracker.record(0, 0, 24.0);
    tracker.finish();
    EXPECT_EQ(tracker.dayCount(), 1u);
    EXPECT_DOUBLE_EQ(tracker.averageWorstDailyRange(), 8.0);
    EXPECT_DOUBLE_EQ(tracker.maxWorstDailyRange(), 8.0);
}

TEST(DailyRangeTracker, WorstSensorWins)
{
    DailyRangeTracker tracker(2);
    // Sensor 0 swings 4 degrees; sensor 1 swings 10.
    tracker.record(0, 0, 20.0);
    tracker.record(0, 0, 24.0);
    tracker.record(0, 1, 18.0);
    tracker.record(0, 1, 28.0);
    tracker.finish();
    EXPECT_DOUBLE_EQ(tracker.averageWorstDailyRange(), 10.0);
}

TEST(DailyRangeTracker, MultipleDays)
{
    DailyRangeTracker tracker(1);
    tracker.record(0, 0, 20.0);
    tracker.record(0, 0, 26.0);   // day 0: range 6
    tracker.record(1, 0, 20.0);
    tracker.record(1, 0, 32.0);   // day 1: range 12
    tracker.record(3, 0, 20.0);
    tracker.record(3, 0, 23.0);   // day 3 (gap allowed): range 3
    tracker.finish();
    EXPECT_EQ(tracker.dayCount(), 3u);
    EXPECT_DOUBLE_EQ(tracker.averageWorstDailyRange(), 7.0);
    EXPECT_DOUBLE_EQ(tracker.minWorstDailyRange(), 3.0);
    EXPECT_DOUBLE_EQ(tracker.maxWorstDailyRange(), 12.0);
}

TEST(DailyRangeTracker, FinishIsIdempotentViaCopies)
{
    DailyRangeTracker tracker(1);
    tracker.record(0, 0, 1.0);
    tracker.record(0, 0, 2.0);
    DailyRangeTracker copy = tracker;
    copy.finish();
    EXPECT_EQ(copy.dayCount(), 1u);
    // The original is untouched (summary() in metrics relies on this).
    DailyRangeTracker copy2 = tracker;
    copy2.finish();
    EXPECT_EQ(copy2.dayCount(), 1u);
}

TEST(HelperFunctions, LerpAndClamp)
{
    EXPECT_DOUBLE_EQ(lerp(0.0, 0.0, 10.0, 100.0, 5.0), 50.0);
    EXPECT_DOUBLE_EQ(lerp(0.0, 7.0, 0.0, 9.0, 3.0), 7.0);  // degenerate
    EXPECT_DOUBLE_EQ(clamp(5.0, 0.0, 3.0), 3.0);
    EXPECT_DOUBLE_EQ(clamp(-5.0, 0.0, 3.0), 0.0);
    EXPECT_DOUBLE_EQ(clamp(2.0, 0.0, 3.0), 2.0);
}

/** Property: variance is never negative across random streams. */
class StatsProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(StatsProperty, VarianceNonNegative)
{
    Rng rng{uint64_t(GetParam())};
    RunningStats s;
    for (int i = 0; i < 257; ++i)
        s.add(rng.uniform(-100.0, 100.0));
    EXPECT_GE(s.variance(), 0.0);
    EXPECT_GE(s.max(), s.mean());
    EXPECT_LE(s.min(), s.mean());
}

INSTANTIATE_TEST_SUITE_P(Seeds, StatsProperty, ::testing::Range(0, 8));
