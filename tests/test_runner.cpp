/**
 * @file
 * Tests for the parallel experiment runner: parallel results must be
 * bit-identical to serial ones, worker exceptions must be captured with
 * their spec without aborting other jobs, the COOLAIR_THREADS override
 * must be honored, and the year protocol's sampled days must span all
 * seasons at any week count.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "environment/world_grid.hpp"
#include "sim/engine.hpp"
#include "sim/runner.hpp"

using namespace coolair;
using namespace coolair::sim;

namespace {

/** A 16-site world sweep, shrunk to a 2-day year sample for speed. */
std::vector<ExperimentSpec>
sweepSpecs(size_t num_sites)
{
    auto sites = environment::worldGrid(num_sites);
    std::vector<ExperimentSpec> specs;
    specs.reserve(sites.size());
    for (size_t i = 0; i < sites.size(); ++i) {
        ExperimentSpec spec;
        spec.location = sites[i];
        spec.workload = WorkloadKind::FacebookProfile;
        spec.weeks = 2;
        spec.physicsStepS = 120.0;
        spec.system = i % 2 ? SystemId::AllNd : SystemId::Baseline;
        spec.seed = ExperimentRunner::deriveSeed(7, i, sites[i].name);
        specs.push_back(spec);
    }
    return specs;
}

void
expectSummariesEqual(const Summary &a, const Summary &b, size_t index)
{
    EXPECT_DOUBLE_EQ(a.avgViolationC, b.avgViolationC) << "spec " << index;
    EXPECT_DOUBLE_EQ(a.avgWorstDailyRangeC, b.avgWorstDailyRangeC)
        << "spec " << index;
    EXPECT_DOUBLE_EQ(a.maxWorstDailyRangeC, b.maxWorstDailyRangeC)
        << "spec " << index;
    EXPECT_DOUBLE_EQ(a.pue, b.pue) << "spec " << index;
    EXPECT_DOUBLE_EQ(a.itKwh, b.itKwh) << "spec " << index;
    EXPECT_DOUBLE_EQ(a.coolingKwh, b.coolingKwh) << "spec " << index;
    EXPECT_EQ(a.days, b.days) << "spec " << index;
}

} // anonymous namespace

TEST(ExperimentRunner, ParallelMatchesSerialBitForBit)
{
    std::vector<ExperimentSpec> specs = sweepSpecs(16);

    RunnerConfig serial_config;
    serial_config.threads = 1;
    SweepOutcome serial = ExperimentRunner(serial_config).run(specs);
    ASSERT_TRUE(serial.allOk());

    RunnerConfig parallel_config;
    parallel_config.threads = 8;
    SweepOutcome parallel = ExperimentRunner(parallel_config).run(specs);
    ASSERT_TRUE(parallel.allOk());

    ASSERT_EQ(serial.results.size(), parallel.results.size());
    for (size_t i = 0; i < specs.size(); ++i) {
        expectSummariesEqual(serial.results[i].system,
                             parallel.results[i].system, i);
        expectSummariesEqual(serial.results[i].outside,
                             parallel.results[i].outside, i);
    }
}

TEST(ExperimentRunner, FailureCarriesSpecAndSparesOtherJobs)
{
    std::vector<ExperimentSpec> specs = sweepSpecs(6);
    specs[3].weeks = -1;  // unrunnable: the scenario builder throws

    RunnerConfig config;
    config.threads = 4;
    SweepOutcome outcome = ExperimentRunner(config).run(specs);

    ASSERT_EQ(outcome.failures.size(), 1u);
    EXPECT_EQ(outcome.failures[0].index, 3u);
    EXPECT_EQ(outcome.failures[0].spec.weeks, -1);
    EXPECT_EQ(outcome.failures[0].spec.location.name,
              specs[3].location.name);
    EXPECT_FALSE(outcome.failures[0].message.empty());
    EXPECT_FALSE(outcome.ok(3));

    // Every other spec still ran to completion.
    for (size_t i = 0; i < specs.size(); ++i) {
        if (i == 3)
            continue;
        EXPECT_TRUE(outcome.ok(i));
        EXPECT_EQ(outcome.results[i].system.days, 2u) << "spec " << i;
    }
}

TEST(ExperimentRunner, ForEachCapturesExceptionsPerIndex)
{
    RunnerConfig config;
    config.threads = 4;
    ExperimentRunner runner(config);

    std::atomic<int> ran{0};
    auto failures = runner.forEach(64, [&](size_t i) {
        if (i % 10 == 3)
            throw std::runtime_error("boom " + std::to_string(i));
        ++ran;
    });

    ASSERT_EQ(failures.size(), 7u);  // 3, 13, ..., 63
    EXPECT_EQ(ran.load(), 64 - 7);
    for (size_t k = 0; k < failures.size(); ++k) {
        EXPECT_EQ(failures[k].index, 10 * k + 3);
        EXPECT_EQ(failures[k].message,
                  "boom " + std::to_string(10 * k + 3));
    }
}

TEST(ExperimentRunner, EnvVarOverridesThreadCount)
{
    ASSERT_EQ(setenv("COOLAIR_THREADS", "3", 1), 0);
    EXPECT_EQ(ExperimentRunner::resolveThreads(0), 3);
    EXPECT_EQ(ExperimentRunner().threads(), 3);

    // An explicit request beats the environment.
    EXPECT_EQ(ExperimentRunner::resolveThreads(5), 5);

    // Junk values fall back to hardware concurrency (>= 1).
    ASSERT_EQ(setenv("COOLAIR_THREADS", "0", 1), 0);
    EXPECT_GE(ExperimentRunner::resolveThreads(0), 1);
    ASSERT_EQ(setenv("COOLAIR_THREADS", "banana", 1), 0);
    EXPECT_GE(ExperimentRunner::resolveThreads(0), 1);

    ASSERT_EQ(unsetenv("COOLAIR_THREADS"), 0);
    EXPECT_GE(ExperimentRunner::resolveThreads(0), 1);
}

TEST(ExperimentRunner, DerivedSeedsAreStableAndDistinct)
{
    uint64_t a = ExperimentRunner::deriveSeed(7, 0, "site-a");
    EXPECT_EQ(a, ExperimentRunner::deriveSeed(7, 0, "site-a"));
    EXPECT_NE(a, ExperimentRunner::deriveSeed(7, 1, "site-a"));
    EXPECT_NE(a, ExperimentRunner::deriveSeed(7, 0, "site-b"));
    EXPECT_NE(a, ExperimentRunner::deriveSeed(8, 0, "site-a"));
}

TEST(ExperimentRunner, EmptySweepIsANoOp)
{
    SweepOutcome outcome = ExperimentRunner().run({});
    EXPECT_TRUE(outcome.allOk());
    EXPECT_TRUE(outcome.results.empty());
}

TEST(YearSampleDays, SpansAllSeasonsAtAnyWeekCount)
{
    for (int weeks : {4, 6, 9, 13, 16, 26, 52}) {
        auto days = yearSampleDays(weeks);
        ASSERT_EQ(days.size(), size_t(weeks)) << "weeks=" << weeks;
        EXPECT_EQ(days.front(), 0);
        for (size_t i = 1; i < days.size(); ++i)
            EXPECT_GT(days[i], days[i - 1]) << "weeks=" << weeks;
        EXPECT_LT(days.back(), util::kDaysPerYear);

        // Seasonal coverage: at least one sampled day per calendar
        // quarter (the pre-fix behavior with 26 weeks never left June).
        int per_quarter[4] = {0, 0, 0, 0};
        for (int d : days) {
            int quarter = d < 90 ? 0 : d < 181 ? 1 : d < 273 ? 2 : 3;
            ++per_quarter[quarter];
        }
        for (int q = 0; q < 4; ++q)
            EXPECT_GT(per_quarter[q], 0)
                << "weeks=" << weeks << " quarter " << q;
    }
}

TEST(YearSampleDays, FullProtocolKeepsFirstDayOfEachWeek)
{
    auto days = yearSampleDays(52);
    ASSERT_EQ(days.size(), 52u);
    for (int w = 0; w < 52; ++w)
        EXPECT_EQ(days[size_t(w)], 7 * w);
}
