/**
 * @file
 * Tests for the live telemetry plane: Prometheus text exposition,
 * bucketed histograms, the time-series sampler, request-trace context
 * propagation, structured JSON logging, the serve daemon's
 * METRICS/SERIES/HEALTH/TRACE verbs (including hostile inputs, which
 * must always come back as ERR), and concurrent scrapes under load.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/prometheus.hpp"
#include "obs/stats.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"
#include "serve/client.hpp"
#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "util/json.hpp"
#include "util/logging.hpp"

using namespace coolair;

namespace {

/** A spec cheap enough to simulate in tens of milliseconds. */
const char kSpecLine[] =
    "run=day; day=10; site=newark; system=baseline; workload=profile; "
    "physics_step=120";

/** A distinct cheap spec per @p n (seed changes the identity). */
std::string
specLine(int n)
{
    return std::string(kSpecLine) + "; seed=" + std::to_string(n);
}

/** Number of occurrences of @p needle in @p text. */
size_t
countOf(const std::string &text, const std::string &needle)
{
    size_t count = 0;
    for (size_t at = text.find(needle); at != std::string::npos;
         at = text.find(needle, at + needle.size()))
        ++count;
    return count;
}

} // anonymous namespace

// --------------------------------------------------- Prometheus exposition

TEST(Prometheus, SanitizesMetricNames)
{
    EXPECT_EQ(obs::promSanitizeName("serve.store_hits"),
              "serve_store_hits");
    EXPECT_EQ(obs::promSanitizeName("a-b c/d"), "a_b_c_d");
    EXPECT_EQ(obs::promSanitizeName("7zip"), "_7zip");
    EXPECT_EQ(obs::promSanitizeName("already_legal:name"),
              "already_legal:name");
}

TEST(Prometheus, RendersCountersAndGauges)
{
    obs::StatsRegistry reg;
    reg.counter("serve.requests", "specs submitted").add(42);
    reg.gauge("sim.speed", "simulated minutes per second").set(1.5);

    const std::string text = obs::toPrometheusText(reg);
    EXPECT_NE(text.find("# HELP coolair_serve_requests_total "
                        "specs submitted\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE coolair_serve_requests_total counter\n"),
              std::string::npos);
    EXPECT_NE(text.find("coolair_serve_requests_total 42\n"),
              std::string::npos);
    EXPECT_NE(text.find("# TYPE coolair_sim_speed gauge\n"),
              std::string::npos);
    EXPECT_NE(text.find("coolair_sim_speed 1.5\n"), std::string::npos);
}

TEST(Prometheus, RendersBucketedHistogramCumulatively)
{
    obs::StatsRegistry reg;
    obs::Histogram &h =
        reg.histogram("lat", "latency", obs::kNoFlags, {1.0, 2.0, 4.0});
    h.record(0.5);
    h.record(1.5);
    h.record(1.75);
    h.record(3.0);
    h.record(100.0);  // above every bound: only in +Inf

    const std::string text = obs::toPrometheusText(reg);
    EXPECT_NE(text.find("# TYPE coolair_lat histogram\n"),
              std::string::npos);
    EXPECT_NE(text.find("coolair_lat_bucket{le=\"1\"} 1\n"),
              std::string::npos);
    EXPECT_NE(text.find("coolair_lat_bucket{le=\"2\"} 3\n"),
              std::string::npos);
    EXPECT_NE(text.find("coolair_lat_bucket{le=\"4\"} 4\n"),
              std::string::npos);
    EXPECT_NE(text.find("coolair_lat_bucket{le=\"+Inf\"} 5\n"),
              std::string::npos);
    EXPECT_NE(text.find("coolair_lat_sum 106.75\n"), std::string::npos);
    EXPECT_NE(text.find("coolair_lat_count 5\n"), std::string::npos);
}

TEST(Prometheus, MomentOnlyHistogramExposesMoments)
{
    obs::StatsRegistry reg;
    obs::Histogram &h = reg.histogram("temp", "zone temperature");
    h.record(10.0);
    h.record(30.0);

    const std::string text = obs::toPrometheusText(reg);
    EXPECT_NE(text.find("coolair_temp_count 2\n"), std::string::npos);
    EXPECT_NE(text.find("coolair_temp_sum 40\n"), std::string::npos);
    EXPECT_NE(text.find("coolair_temp_min 10\n"), std::string::npos);
    EXPECT_NE(text.find("coolair_temp_max 30\n"), std::string::npos);
    EXPECT_EQ(text.find("_bucket"), std::string::npos);
}

TEST(Prometheus, SkipsWallClockStatsOnRequest)
{
    obs::StatsRegistry reg;
    reg.counter("steady", "deterministic").add(1);
    reg.histogram("timing", "wall-clock timing", obs::kWallClock)
        .record(0.5);

    EXPECT_NE(obs::toPrometheusText(reg).find("coolair_timing"),
              std::string::npos);
    obs::PrometheusOptions skip;
    skip.skipWallClock = true;
    const std::string text = obs::toPrometheusText(reg, skip);
    EXPECT_EQ(text.find("coolair_timing"), std::string::npos);
    EXPECT_NE(text.find("coolair_steady_total 1\n"), std::string::npos);
}

TEST(Prometheus, ByteIdenticalForEqualRegistries)
{
    auto build = [] {
        obs::StatsRegistry reg;
        reg.counter("b.second", "desc").add(2);
        reg.counter("a.first", "desc").add(1);
        reg.histogram("c.hist", "h", obs::kNoFlags, {1.0, 2.0}).record(1.5);
        return obs::toPrometheusText(reg);
    };
    const std::string one = build();
    EXPECT_EQ(one, build());
    // Sorted by stat name regardless of registration order.
    EXPECT_LT(one.find("coolair_a_first"), one.find("coolair_b_second"));
    EXPECT_LT(one.find("coolair_b_second"), one.find("coolair_c_hist"));
}

// --------------------------------------------------- bucketed histograms

TEST(HistogramBuckets, QuantileInterpolatesWithinBuckets)
{
    obs::Histogram h;
    h.setBuckets({1.0, 2.0, 4.0});
    for (int i = 0; i < 100; ++i)
        h.record(1.5);  // all in the (1, 2] bucket

    const obs::Histogram::Snapshot s = h.snapshot();
    EXPECT_DOUBLE_EQ(s.quantile(0.5), 1.5);   // midway through bucket 2
    EXPECT_DOUBLE_EQ(s.quantile(1.0), 2.0);
    EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
}

TEST(HistogramBuckets, QuantileCapsAtLastBound)
{
    obs::Histogram h;
    h.setBuckets({1.0});
    h.record(50.0);  // above every bound
    EXPECT_DOUBLE_EQ(h.snapshot().quantile(0.99), 1.0);
}

TEST(HistogramBuckets, CombineAddsMatchingBounds)
{
    obs::Histogram a, b;
    a.setBuckets({1.0, 2.0});
    b.setBuckets({1.0, 2.0});
    a.record(0.5);
    b.record(1.5);
    b.record(0.25);
    a.combine(b.snapshot());

    const obs::Histogram::Snapshot s = a.snapshot();
    EXPECT_EQ(s.count, 3);
    ASSERT_EQ(s.bucketCounts.size(), 2u);
    EXPECT_EQ(s.bucketCounts[0], 2);
    EXPECT_EQ(s.bucketCounts[1], 1);
}

TEST(HistogramBuckets, CombineDropsMismatchedBoundsKeepsMoments)
{
    obs::Histogram a, b;
    a.setBuckets({1.0, 2.0});
    b.setBuckets({5.0});
    a.record(0.5);
    b.record(4.0);
    a.combine(b.snapshot());

    const obs::Histogram::Snapshot s = a.snapshot();
    EXPECT_EQ(s.count, 2);
    EXPECT_DOUBLE_EQ(s.max, 4.0);
    EXPECT_TRUE(s.bucketBounds.empty());  // never invent counts
}

TEST(HistogramBuckets, RejectsNonIncreasingBounds)
{
    obs::Histogram h;
    EXPECT_THROW(h.setBuckets({1.0, 1.0}), std::invalid_argument);
    EXPECT_THROW(h.setBuckets({2.0, 1.0}), std::invalid_argument);
}

TEST(HistogramBuckets, RegistryKeepsFirstRegistrationsBounds)
{
    obs::StatsRegistry reg;
    reg.histogram("h", "", obs::kNoFlags, {1.0, 2.0}).record(0.5);
    // A later registration with different bounds must not reset counts.
    reg.histogram("h", "", obs::kNoFlags, {9.0});
    const auto entries = reg.snapshot();
    ASSERT_EQ(entries.size(), 1u);
    ASSERT_EQ(entries[0].histogram.bucketBounds.size(), 2u);
    EXPECT_EQ(entries[0].histogram.bucketCounts[0], 1);
}

TEST(HistogramBuckets, MergePropagatesBounds)
{
    obs::StatsRegistry source;
    source.histogram("h", "", obs::kNoFlags, {1.0, 2.0}).record(1.5);
    obs::StatsRegistry target;
    target.merge(source);
    const auto entries = target.snapshot();
    ASSERT_EQ(entries.size(), 1u);
    ASSERT_EQ(entries[0].histogram.bucketBounds.size(), 2u);
    EXPECT_EQ(entries[0].histogram.bucketCounts[1], 1);
}

TEST(HistogramBuckets, DumpTextUnchangedByBuckets)
{
    // Buckets surface only through the Prometheus exposition; the
    // gem5-style dumps must stay byte-identical to the bucketless
    // shape (the cross-layer determinism contract).
    obs::StatsRegistry plain, bucketed;
    plain.histogram("h", "d").record(1.5);
    bucketed.histogram("h", "d", obs::kNoFlags, {1.0, 2.0}).record(1.5);
    std::ostringstream a, b;
    plain.dumpText(a);
    bucketed.dumpText(b);
    EXPECT_EQ(a.str(), b.str());
}

// --------------------------------------------------- time-series sampler

TEST(TimeSeries, SamplesCountersGaugesAndHistograms)
{
    obs::StatsRegistry reg;
    obs::Counter &c = reg.counter("reqs");
    reg.gauge("load").set(0.5);
    obs::Histogram &h = reg.histogram("lat");

    obs::TimeSeriesSampler sampler([&] { return reg.snapshot(); });
    c.add(2);
    h.record(4.0);
    sampler.sampleNow(1000);
    c.add(3);
    sampler.sampleNow(2000);

    const auto names = sampler.seriesNames();
    ASSERT_EQ(names.size(), 4u);  // sorted: lat::count, lat::mean, ...
    EXPECT_EQ(names[0], "lat::count");
    EXPECT_EQ(names[1], "lat::mean");
    EXPECT_EQ(names[2], "load");
    EXPECT_EQ(names[3], "reqs");

    const auto reqs = sampler.series("reqs");
    ASSERT_EQ(reqs.size(), 2u);
    EXPECT_EQ(reqs[0].unixMs, 1000);
    EXPECT_DOUBLE_EQ(reqs[0].value, 2.0);
    EXPECT_DOUBLE_EQ(reqs[1].value, 5.0);
    EXPECT_DOUBLE_EQ(sampler.series("lat::mean")[0].value, 4.0);
    EXPECT_TRUE(sampler.series("no.such").empty());
}

TEST(TimeSeries, RingOverwritesOldestAtCapacity)
{
    obs::StatsRegistry reg;
    obs::Counter &c = reg.counter("n");
    obs::TimeSeriesConfig config;
    config.capacity = 3;
    obs::TimeSeriesSampler sampler([&] { return reg.snapshot(); },
                                   config);
    for (int i = 1; i <= 5; ++i) {
        c.inc();
        sampler.sampleNow(i * 1000);
    }
    const auto points = sampler.series("n");
    ASSERT_EQ(points.size(), 3u);  // bounded memory
    EXPECT_EQ(points[0].unixMs, 3000);  // oldest two evicted
    EXPECT_EQ(points[2].unixMs, 5000);
    EXPECT_DOUBLE_EQ(points[2].value, 5.0);

    const auto last2 = sampler.series("n", 2);
    ASSERT_EQ(last2.size(), 2u);
    EXPECT_EQ(last2[0].unixMs, 4000);
}

TEST(TimeSeries, RatePerSecondDerivesCounterDeltas)
{
    obs::StatsRegistry reg;
    obs::Counter &c = reg.counter("n");
    obs::TimeSeriesSampler sampler([&] { return reg.snapshot(); });
    sampler.sampleNow(1000);
    c.add(4);
    sampler.sampleNow(3000);  // 2 s later: 2/s
    c.add(1);
    sampler.sampleNow(4000);  // 1 s later: 1/s

    const auto rates = sampler.ratePerSecond("n");
    ASSERT_EQ(rates.size(), 2u);
    EXPECT_EQ(rates[0].unixMs, 3000);
    EXPECT_DOUBLE_EQ(rates[0].value, 2.0);
    EXPECT_DOUBLE_EQ(rates[1].value, 1.0);
    EXPECT_TRUE(sampler.ratePerSecond("missing").empty());
}

TEST(TimeSeries, BackgroundThreadStartsAndStops)
{
    obs::StatsRegistry reg;
    reg.counter("n").inc();
    obs::TimeSeriesConfig config;
    config.intervalSeconds = 0.01;
    obs::TimeSeriesSampler sampler([&] { return reg.snapshot(); },
                                   config);
    sampler.start();
    for (int spins = 0; sampler.sampleCount() == 0 && spins < 500;
         ++spins)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    sampler.stop();
    EXPECT_GT(sampler.sampleCount(), 0u);
    EXPECT_FALSE(sampler.series("n").empty());
}

// --------------------------------------------------- trace context

TEST(TraceContext, ScopesNestAndRestore)
{
    EXPECT_EQ(obs::currentTraceId(), 0u);
    {
        obs::TraceContextScope outer(7);
        EXPECT_EQ(obs::currentTraceId(), 7u);
        {
            obs::TraceContextScope inner(9);
            EXPECT_EQ(obs::currentTraceId(), 9u);
        }
        EXPECT_EQ(obs::currentTraceId(), 7u);
    }
    EXPECT_EQ(obs::currentTraceId(), 0u);
}

TEST(TraceContext, SpansInheritTheCurrentTraceId)
{
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.clear();
    tracer.setEnabled(true);
    {
        obs::TraceContextScope scope(42);
        obs::Span span("work", "test");
    }
    tracer.setEnabled(false);

    const auto events = tracer.takeTrace(42);
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0].name, "work");
    EXPECT_EQ(events[0].traceId, 42u);
    tracer.clear();
}

TEST(TraceContext, TakeTraceExtractsOnlyMatchingEvents)
{
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.clear();
    tracer.setEnabled(true);
    tracer.recordComplete("a", "t", 0, 1, 0, 1);
    tracer.recordComplete("b", "t", 1, 1, 0, 2);
    tracer.recordComplete("c", "t", 2, 1, 0, 1);
    tracer.setEnabled(false);

    const auto one = tracer.takeTrace(1);
    ASSERT_EQ(one.size(), 2u);
    EXPECT_EQ(one[0].name, "a");
    EXPECT_EQ(one[1].name, "c");
    EXPECT_EQ(tracer.eventCount(), 1u);   // "b" stays
    EXPECT_TRUE(tracer.takeTrace(0).empty());  // 0 never matches
    tracer.clear();
}

TEST(TraceContext, EventCapShedsOldestAndCounts)
{
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.clear();
    tracer.setMaxEvents(8);
    tracer.setEnabled(true);
    for (int i = 0; i < 12; ++i)
        tracer.recordComplete("e" + std::to_string(i), "t", i, 1, 0, 0);
    tracer.setEnabled(false);

    EXPECT_LE(tracer.eventCount(), 8u);  // bounded daemon memory
    EXPECT_GE(tracer.droppedEvents(), 2u);
    tracer.setMaxEvents(obs::Tracer::kDefaultMaxEvents);
    tracer.clear();
}

TEST(TraceContext, WriteTraceEventsJsonIsDeterministic)
{
    std::vector<obs::TraceEvent> events{
        {"late", "t", 10, 5, 2, 3},
        {"early", "t", 1, 2, 1, 3},
    };
    std::vector<std::pair<int, std::string>> tracks{{2, "b"}, {1, "a"}};
    std::ostringstream os;
    obs::writeTraceEventsJson(os, events, tracks);
    const std::string json = os.str();

    EXPECT_EQ(json.rfind("{\n  \"traceEvents\": [", 0), 0u);
    EXPECT_LT(json.find("\"early\""), json.find("\"late\""));  // ts order
    EXPECT_LT(json.find("\"a\""), json.find("\"b\""));  // tid order
    EXPECT_NE(json.find("\"args\": {\"trace_id\": 3}"),
              std::string::npos);
    EXPECT_NE(json.find("\"displayTimeUnit\": \"ms\""),
              std::string::npos);
}

// --------------------------------------------------- structured logging

namespace {

/** Extract the quoted JSON token following `<quoted key>: `. */
std::string
jsonTokenAfter(const std::string &line, const std::string &key)
{
    const std::string marker = util::jsonQuote(key) + ": ";
    const size_t at = line.find(marker);
    if (at == std::string::npos)
        return "";
    size_t i = at + marker.size();
    if (i >= line.size() || line[i] != '"')
        return "";
    for (size_t j = i + 1; j < line.size(); ++j) {
        if (line[j] == '\\') {
            ++j;
            continue;
        }
        if (line[j] == '"')
            return line.substr(i, j - i + 1);
    }
    return "";
}

} // anonymous namespace

TEST(JsonLogging, RoundTripsHostileBytesExactly)
{
    util::Logger &logger = util::Logger::instance();
    const util::LogFormat saved = logger.format();
    logger.setFormat(util::LogFormat::Json);

    const std::string hostile =
        "quote \" backslash \\ newline \n tab \t ctrl \x01 utf8 \xc3\xa9";
    const std::string line = logger.formatLine(
        util::LogLevel::Warn, hostile,
        {{"key \"k\"", "value\nwith\tescapes \\"}});
    logger.setFormat(saved);

    EXPECT_EQ(line.find('\n'), std::string::npos);  // one line per record
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');

    std::string out;
    ASSERT_TRUE(util::jsonUnquote(jsonTokenAfter(line, "msg"), out));
    EXPECT_EQ(out, hostile);
    ASSERT_TRUE(util::jsonUnquote(jsonTokenAfter(line, "level"), out));
    EXPECT_EQ(out, "warn");
    ASSERT_TRUE(util::jsonUnquote(jsonTokenAfter(line, "key \"k\""), out));
    EXPECT_EQ(out, "value\nwith\tescapes \\");
}

TEST(JsonLogging, QuoteUnquoteIsExactInverse)
{
    std::string all;
    for (int c = 1; c < 256; ++c)
        all += char(c);
    std::string out;
    ASSERT_TRUE(util::jsonUnquote(util::jsonQuote(all), out));
    EXPECT_EQ(out, all);
}

TEST(JsonLogging, UnquoteRejectsMalformedTokens)
{
    std::string out;
    EXPECT_FALSE(util::jsonUnquote("", out));
    EXPECT_FALSE(util::jsonUnquote("\"", out));          // unterminated
    EXPECT_FALSE(util::jsonUnquote("\"a\"x", out));      // trailing bytes
    EXPECT_FALSE(util::jsonUnquote("\"\\q\"", out));     // unknown escape
    EXPECT_FALSE(util::jsonUnquote("\"\\u12\"", out));   // truncated \u
    EXPECT_FALSE(util::jsonUnquote("\"\\u0100\"", out)); // above latin
    EXPECT_FALSE(util::jsonUnquote("noquotes", out));
    EXPECT_TRUE(util::jsonUnquote("\"\\u0041\"", out));
    EXPECT_EQ(out, "A");
}

TEST(JsonLogging, TextFormatAppendsFields)
{
    util::Logger &logger = util::Logger::instance();
    const util::LogFormat saved = logger.format();
    logger.setFormat(util::LogFormat::Text);
    const std::string line = logger.formatLine(
        util::LogLevel::Info, "hello", {{"k", "v"}});
    logger.setFormat(saved);
    EXPECT_NE(line.find("hello"), std::string::npos);
    EXPECT_NE(line.find("k=v"), std::string::npos);
}

// --------------------------------------------------- serve: METRICS

TEST(ServeMetrics, ByteIdenticalAcrossThreadCounts)
{
    auto scrape = [](int threads) {
        serve::ServiceConfig config;
        config.threads = threads;
        config.sampleIntervalSeconds = 0.0;  // no background sampler
        serve::ExperimentService service(config);
        for (int i = 0; i < 3; ++i)
            EXPECT_TRUE(service.run(
                serve::specTextFromArg(specLine(i))).ok);
        // Repeat one spec: reruns (no store), still deterministic.
        EXPECT_TRUE(service.run(
            serve::specTextFromArg(specLine(0))).ok);
        return service.metricsText(/*skipWallClock=*/true);
    };
    const std::string one = scrape(1);
    const std::string eight = scrape(8);
    EXPECT_EQ(one, eight);
    EXPECT_NE(one.find("coolair_serve_requests_total 4\n"),
              std::string::npos);
    // Wall-clock-dependent stats are the only thing omitted.
    EXPECT_EQ(one.find("latency"), std::string::npos);
}

TEST(ServeMetrics, ExposesLatencyHistogramWithBuckets)
{
    serve::ServiceConfig config;
    config.threads = 2;
    config.sampleIntervalSeconds = 0.0;
    serve::ExperimentService service(config);
    ASSERT_TRUE(service.run(serve::specTextFromArg(specLine(0))).ok);

    const std::string text = service.metricsText();
    EXPECT_NE(
        text.find("# TYPE coolair_serve_latency_seconds histogram\n"),
        std::string::npos);
    EXPECT_NE(
        text.find("coolair_serve_latency_seconds_bucket{le=\"+Inf\"} 1\n"),
        std::string::npos);
    EXPECT_NE(text.find("coolair_serve_latency_seconds_count 1\n"),
              std::string::npos);
    // Cumulative: every finite bucket count <= the +Inf count, and the
    // sequence never decreases.
    long long prev = -1;
    size_t buckets = 0;
    std::istringstream is(text);
    std::string line;
    while (std::getline(is, line)) {
        if (line.rfind("coolair_serve_latency_seconds_bucket{le=", 0) !=
            0)
            continue;
        const long long v =
            std::stoll(line.substr(line.rfind(' ') + 1));
        EXPECT_GE(v, prev);
        prev = v;
        ++buckets;
    }
    EXPECT_GE(buckets, 10u);
}

// --------------------------------------------------- serve: HEALTH

TEST(ServeHealth, ReportsOkThenDegradedUnderBacklog)
{
    std::mutex gate_mutex;
    std::condition_variable gate_cv;
    bool release = false;

    serve::ServiceConfig config;
    config.threads = 1;
    config.sampleIntervalSeconds = 0.0;
    config.onJobStart = [&] {
        std::unique_lock<std::mutex> lock(gate_mutex);
        gate_cv.wait(lock, [&] { return release; });
    };
    serve::ExperimentService service(config);
    EXPECT_EQ(service.healthText().rfind("status: OK", 0), 0u);

    // 6 distinct held specs on 1 worker: inflight > 4x threads.
    std::vector<uint64_t> tickets;
    for (int i = 0; i < 6; ++i) {
        auto sub = service.submit(serve::specTextFromArg(specLine(i)));
        ASSERT_TRUE(sub.ok);
        tickets.push_back(sub.ticket);
    }
    const std::string degraded = service.healthText();
    EXPECT_EQ(degraded.rfind("status: DEGRADED", 0), 0u);
    EXPECT_NE(degraded.find("backlog"), std::string::npos);

    {
        std::lock_guard<std::mutex> lock(gate_mutex);
        release = true;
    }
    gate_cv.notify_all();
    for (uint64_t t : tickets)
        EXPECT_TRUE(service.wait(t).ok);
    EXPECT_EQ(service.healthText().rfind("status: OK", 0), 0u);
}

// --------------------------------------------------- serve: TRACE

TEST(ServeTrace, RetainsCorrelatedRequestTraces)
{
    serve::ServiceConfig config;
    config.threads = 2;
    config.traceDepth = 4;
    config.sampleIntervalSeconds = 0.0;
    serve::ExperimentService service(config);

    auto sub = service.submit(serve::specTextFromArg(specLine(0)));
    ASSERT_TRUE(sub.ok);
    ASSERT_TRUE(service.wait(sub.ticket).ok);

    std::string json, error;
    ASSERT_TRUE(service.traceJson(sub.ticket, json, error)) << error;
    // Well-formed Chrome-trace JSON covering serve -> pool -> engine.
    EXPECT_EQ(json.rfind("{\n  \"traceEvents\": [", 0), 0u);
    EXPECT_EQ(json.substr(json.size() - 2), "}\n");
    EXPECT_NE(json.find("\"serve.submit\""), std::string::npos);
    EXPECT_NE(json.find("\"serve.run\""), std::string::npos);
    EXPECT_NE(json.find("\"scenario.run\""), std::string::npos);
    EXPECT_NE(json.find("\"engine.runDay\""), std::string::npos);
    EXPECT_NE(json.find("\"trace_id\""), std::string::npos);
    EXPECT_NE(json.find("pool worker"), std::string::npos);
    // Every complete event carries the same trace id.
    EXPECT_EQ(countOf(json, "\"trace_id\""), countOf(json, "\"ph\": \"X\""));
}

TEST(ServeTrace, DedupTicketsShareTheFirstSubmittersTrace)
{
    std::mutex gate_mutex;
    std::condition_variable gate_cv;
    bool release = false;

    serve::ServiceConfig config;
    config.threads = 1;
    config.traceDepth = 4;
    config.sampleIntervalSeconds = 0.0;
    config.onJobStart = [&] {
        std::unique_lock<std::mutex> lock(gate_mutex);
        gate_cv.wait(lock, [&] { return release; });
    };
    serve::ExperimentService service(config);

    auto first = service.submit(serve::specTextFromArg(specLine(0)));
    auto second = service.submit(serve::specTextFromArg(specLine(0)));
    ASSERT_TRUE(first.ok);
    ASSERT_TRUE(second.ok);

    // In flight: TRACE must say so, not "unknown".
    std::string json, error;
    EXPECT_FALSE(service.traceJson(first.ticket, json, error));
    EXPECT_NE(error.find("in flight"), std::string::npos);

    {
        std::lock_guard<std::mutex> lock(gate_mutex);
        release = true;
    }
    gate_cv.notify_all();
    ASSERT_TRUE(service.wait(first.ticket).ok);
    ASSERT_TRUE(service.wait(second.ticket).ok);

    std::string json2;
    ASSERT_TRUE(service.traceJson(first.ticket, json, error)) << error;
    ASSERT_TRUE(service.traceJson(second.ticket, json2, error)) << error;
    EXPECT_EQ(json, json2);  // one shared run, one shared trace
}

TEST(ServeTrace, EvictsBeyondDepthAndRejectsUnknown)
{
    serve::ServiceConfig config;
    config.threads = 2;
    config.traceDepth = 2;
    config.sampleIntervalSeconds = 0.0;
    serve::ExperimentService service(config);

    std::vector<uint64_t> tickets;
    for (int i = 0; i < 3; ++i) {
        auto sub = service.submit(serve::specTextFromArg(specLine(i)));
        ASSERT_TRUE(sub.ok);
        ASSERT_TRUE(service.wait(sub.ticket).ok);
        tickets.push_back(sub.ticket);
    }

    std::string json, error;
    EXPECT_TRUE(service.traceJson(tickets[2], json, error));
    EXPECT_TRUE(service.traceJson(tickets[1], json, error));
    EXPECT_FALSE(service.traceJson(tickets[0], json, error));  // evicted
    EXPECT_FALSE(service.traceJson(999999, json, error));      // unknown

    serve::ServiceConfig off;
    off.threads = 1;
    off.sampleIntervalSeconds = 0.0;
    serve::ExperimentService untraced(off);
    EXPECT_FALSE(untraced.traceJson(1, json, error));
    EXPECT_NE(error.find("disabled"), std::string::npos);
}

// --------------------------------------------------- serve: socket verbs

namespace {

/** A started server on an ephemeral TCP port. */
struct LiveServer
{
    serve::ExperimentService service;
    serve::LineServer server;

    explicit LiveServer(serve::ServiceConfig config)
        : service(std::move(config)), server(service, tcpConfig())
    {
        server.start();
    }
    static serve::ServerConfig tcpConfig()
    {
        serve::ServerConfig config;
        config.tcpPort = 0;  // ephemeral
        return config;
    }
    serve::Client connect()
    {
        return serve::Client::connectTcp(server.tcpPort());
    }
};

} // anonymous namespace

TEST(ServeVerbs, MetricsSeriesHealthTraceOverTheWire)
{
    serve::ServiceConfig config;
    config.threads = 2;
    config.traceDepth = 4;
    config.sampleIntervalSeconds = 1e6;  // sampler on, but test-driven
    LiveServer live(config);
    serve::Client client = live.connect();

    uint64_t ticket = 0;
    ASSERT_TRUE(client.submit(specLine(0), ticket).ok);
    ASSERT_TRUE(client.request("WAIT " + std::to_string(ticket)).ok);

    auto metrics = client.request("METRICS");
    ASSERT_TRUE(metrics.ok) << metrics.error;
    EXPECT_EQ(metrics.status.rfind("METRICS ", 0), 0u);
    EXPECT_NE(metrics.payload.find("coolair_serve_requests_total 1\n"),
              std::string::npos);

    auto health = client.request("HEALTH");
    ASSERT_TRUE(health.ok) << health.error;
    EXPECT_EQ(health.payload.rfind("status: OK", 0), 0u);
    EXPECT_NE(health.payload.find("workers: 2"), std::string::npos);

    // The background sampler takes one sample at startup; wait it out
    // so the two test-driven samples below land after it in the ring.
    ASSERT_NE(live.service.sampler(), nullptr);
    for (int spins = 0;
         live.service.sampler()->sampleCount() == 0 && spins < 1000;
         ++spins)
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    ASSERT_GT(live.service.sampler()->sampleCount(), 0u);
    live.service.sampler()->sampleNow(1000);
    live.service.sampler()->sampleNow(2000);
    auto series = client.request("SERIES serve.requests 2");
    ASSERT_TRUE(series.ok) << series.error;
    EXPECT_EQ(series.payload, "1000 1\n2000 1\n");

    auto trace = client.request("TRACE " + std::to_string(ticket));
    ASSERT_TRUE(trace.ok) << trace.error;
    EXPECT_NE(trace.payload.find("\"serve.run\""), std::string::npos);
    EXPECT_NE(trace.payload.find("\"engine.runDay\""), std::string::npos);
}

TEST(ServeVerbs, HostileInputsAlwaysErrNeverKillTheConnection)
{
    serve::ServiceConfig config;
    config.threads = 1;
    config.traceDepth = 2;
    config.sampleIntervalSeconds = 1e6;
    LiveServer live(config);
    serve::Client client = live.connect();
    live.service.sampler()->sampleNow(1000);

    const char *hostile[] = {
        "SERIES",                                  // missing arg
        "SERIES serve.requests 0",                 // zero count
        "SERIES serve.requests -5",                // negative count
        "SERIES serve.requests 10001",             // above the cap
        "SERIES serve.requests 99999999999999999999999",  // wraps u64
        "SERIES serve.requests 10x",               // trailing garbage
        "SERIES no.such.stat 5",                   // unknown series
        "SERIES ../../etc/passwd 5",               // hostile name
        "TRACE",                                   // missing arg
        "TRACE abc",                               // non-numeric
        "TRACE -1",                                // signed
        "TRACE 18446744073709551616",              // wraps u64
        "TRACE 424242",                            // unknown ticket
        "METRICS now",                             // forbidden arg
        "HEALTH please",                           // forbidden arg
        "metrics",                                 // case-sensitive
    };
    for (const char *line : hostile) {
        auto r = client.request(line);
        EXPECT_FALSE(r.ok) << line;
        EXPECT_FALSE(r.error.empty()) << line;
        // The connection survives every rejection.
        EXPECT_TRUE(client.request("PING").ok) << line;
    }
}

TEST(ServeVerbs, ConcurrentScrapesUnderLoadStayWellFormed)
{
    serve::ServiceConfig config;
    config.threads = 2;
    config.traceDepth = 8;
    config.sampleIntervalSeconds = 0.01;
    LiveServer live(config);

    std::atomic<bool> failed{false};
    std::atomic<int> specs_done{0};

    // Two submitters run distinct cheap specs...
    std::vector<std::thread> threads;
    for (int s = 0; s < 2; ++s) {
        threads.emplace_back([&live, &failed, &specs_done, s] {
            serve::Client client = live.connect();
            for (int i = 0; i < 6; ++i) {
                auto r = client.request(
                    "RUN " + specLine(s * 100 + i));
                if (!r.ok || r.payload.empty())
                    failed = true;
                ++specs_done;
            }
        });
    }
    // ...while four scrapers hammer every read-only verb.  The scrape
    // path snapshots under brief locks and renders outside them, so
    // this must neither crash, deadlock, nor produce torn frames.
    for (int s = 0; s < 4; ++s) {
        threads.emplace_back([&live, &failed, &specs_done] {
            serve::Client client = live.connect();
            while (specs_done.load() < 12) {
                for (const char *verb :
                     {"METRICS", "HEALTH", "STATS"}) {
                    auto r = client.request(verb);
                    if (!r.ok || r.payload.empty())
                        failed = true;
                }
                auto series =
                    client.request("SERIES serve.requests 100");
                if (!series.ok &&
                    series.error.find("unknown series") ==
                        std::string::npos)
                    failed = true;
            }
        });
    }
    for (auto &t : threads)
        t.join();
    EXPECT_FALSE(failed.load());

    serve::Client client = live.connect();
    auto metrics = client.request("METRICS");
    ASSERT_TRUE(metrics.ok);
    EXPECT_NE(metrics.payload.find("coolair_serve_requests_total 12\n"),
              std::string::npos);
}
