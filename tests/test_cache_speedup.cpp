/**
 * @file
 * The incremental-sweep performance gate: a fully warm 200-site world
 * sweep served from the persistent result store must be at least 20x
 * faster than the cold run that populated it, while producing
 * byte-identical output.  Slow-labelled (a real 400-experiment sweep);
 * the functional cache tests live in tests/test_result_cache.cpp.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <vector>

#include "environment/world_grid.hpp"
#include "sim/result_cache.hpp"
#include "sim/runner.hpp"
#include "sim/spec_io.hpp"

using namespace coolair;
using namespace coolair::sim;
namespace fs = std::filesystem;

namespace {

std::vector<ExperimentSpec>
cachedSweepSpecs(size_t num_sites, const std::string &cache_dir)
{
    auto sites = environment::worldGrid(num_sites);
    std::vector<ExperimentSpec> specs;
    specs.reserve(sites.size() * 2);
    for (size_t i = 0; i < sites.size(); ++i) {
        ExperimentSpec spec;
        spec.location = sites[i];
        spec.workload = WorkloadKind::FacebookProfile;
        spec.weeks = 1;
        spec.physicsStepS = 120.0;
        spec.seed = ExperimentRunner::deriveSeed(7, i, sites[i].name);
        spec.cacheDirPath = cache_dir;
        spec.system = SystemId::Baseline;
        specs.push_back(spec);
        spec.system = SystemId::AllNd;
        specs.push_back(spec);
    }
    return specs;
}

std::string
sweepBytes(const SweepOutcome &sweep)
{
    std::string bytes;
    for (const auto &r : sweep.results)
        bytes += formatResult(r);
    return bytes;
}

} // anonymous namespace

TEST(CacheSpeedup, WarmSweepIsAtLeastTwentyTimesFaster)
{
    const std::string dir =
        (fs::temp_directory_path() / "coolair-cache-speedup").string();
    fs::remove_all(dir);

    // The issue's contract: a warm 200-site world sweep >= 20x faster
    // than cold.  Generous margin: warm is pure file IO (measured
    // ~1000x on the reference machine), cold is hundreds of
    // simulations.
    std::vector<ExperimentSpec> specs = cachedSweepSpecs(200, dir);

    // Warm the process-wide lazy state (learned bundles, the profile)
    // on a disjoint cache dir first, so the timed cold sweep measures
    // simulation work, not one-time learning campaigns.
    {
        std::vector<ExperimentSpec> warmup = cachedSweepSpecs(1, dir + "-w");
        ASSERT_TRUE(ExperimentRunner(RunnerConfig{1}).run(warmup).allOk());
        fs::remove_all(dir + "-w");
    }

    using clock = std::chrono::steady_clock;
    const auto t0 = clock::now();
    SweepOutcome cold = ExperimentRunner(RunnerConfig{1}).run(specs);
    const auto t1 = clock::now();
    ASSERT_TRUE(cold.allOk());
    ASSERT_EQ(0u, cold.cacheHits());

    SweepOutcome warm = ExperimentRunner(RunnerConfig{1}).run(specs);
    const auto t2 = clock::now();
    ASSERT_TRUE(warm.allOk());
    ASSERT_EQ(specs.size(), warm.cacheHits());
    EXPECT_EQ(sweepBytes(cold), sweepBytes(warm));

    const double cold_s = std::chrono::duration<double>(t1 - t0).count();
    const double warm_s = std::chrono::duration<double>(t2 - t1).count();
    EXPECT_GE(cold_s, 20.0 * warm_s)
        << "cold " << cold_s << " s vs warm " << warm_s << " s";

    fs::remove_all(dir);
}
