/**
 * @file
 * Tests for the metrics collector and the co-simulation engine.
 */

#include <gtest/gtest.h>

#include "environment/location.hpp"
#include "sim/engine.hpp"
#include "sim/experiment.hpp"
#include "workload/cluster.hpp"
#include "workload/trace_gen.hpp"

using namespace coolair;
using namespace coolair::sim;
using util::SimTime;
using util::kSecondsPerHour;

namespace {

plant::SensorReadings
reading(double temp, double rh = 50.0, double it_w = 1000.0,
        double cool_w = 100.0)
{
    plant::SensorReadings s;
    s.podInletC = {temp, temp + 1.0};
    s.coldAisleRhPercent = rh;
    s.itPowerW = it_w;
    s.coolingPowerW = cool_w;
    return s;
}

} // anonymous namespace

TEST(Metrics, ViolationAveragesOverAllReadings)
{
    MetricsCollector m({}, 2);  // max temp 30
    m.record(SimTime(0), reading(29.0), 60.0);    // 0 violation
    m.record(SimTime(60), reading(31.0), 60.0);   // pods at 31, 32
    Summary s = m.summary();
    // Four sensor readings: 0, 0, 1, 2 -> avg 0.75.
    EXPECT_NEAR(s.avgViolationC, 0.75, 1e-9);
}

TEST(Metrics, PueIncludesDeliveryOverhead)
{
    MetricsCollector m({}, 2);
    // IT 1000 W, cooling 100 W for one hour.
    for (int i = 0; i < 60; ++i)
        m.record(SimTime(i * 60), reading(25.0), 60.0);
    Summary s = m.summary();
    EXPECT_NEAR(s.itKwh, 1.0, 1e-6);
    EXPECT_NEAR(s.coolingKwh, 0.1, 1e-6);
    // (1.0 + 0.1 + 0.08) / 1.0.
    EXPECT_NEAR(s.pue, 1.18, 1e-6);
}

TEST(Metrics, DailyRangesSeparateDays)
{
    MetricsCollector m({}, 2);
    // Day 0: swing 4 C; day 1: swing 10 C.
    m.record(SimTime(0), reading(22.0), 60.0);
    m.record(SimTime(600), reading(26.0), 60.0);
    m.record(SimTime(util::kSecondsPerDay), reading(20.0), 60.0);
    m.record(SimTime(util::kSecondsPerDay + 600), reading(30.0), 60.0);
    Summary s = m.summary();
    EXPECT_EQ(s.days, 2u);
    EXPECT_NEAR(s.avgWorstDailyRangeC, 7.0, 1e-9);
    EXPECT_NEAR(s.maxWorstDailyRangeC, 10.0, 1e-9);
    EXPECT_NEAR(s.minWorstDailyRangeC, 4.0, 1e-9);
}

TEST(Metrics, HumidityViolationsCounted)
{
    MetricsCollector m({}, 2);  // ceiling 80 %
    m.record(SimTime(0), reading(25.0, 85.0), 60.0);
    m.record(SimTime(60), reading(25.0, 70.0), 60.0);
    Summary s = m.summary();
    EXPECT_NEAR(s.humidityViolationFrac, 0.5, 1e-9);
}

TEST(Metrics, RateViolationsUseTenMinuteWindow)
{
    MetricsCollector m({}, 2);
    // 5 C over 10 minutes = 30 C/h > 20 C/h.
    for (int i = 0; i <= 10; ++i)
        m.record(SimTime(i * 60), reading(20.0 + 0.5 * i), 60.0);
    Summary fast = m.summary();
    EXPECT_GT(fast.rateViolationFrac, 0.0);

    MetricsCollector slow({}, 2);
    // 1 C over 10 minutes = 6 C/h: fine.
    for (int i = 0; i <= 10; ++i)
        slow.record(SimTime(i * 60), reading(20.0 + 0.1 * i), 60.0);
    EXPECT_DOUBLE_EQ(slow.summary().rateViolationFrac, 0.0);
}

TEST(Metrics, OutsideRangesTracked)
{
    MetricsCollector m({}, 1);
    m.recordOutside(SimTime(0), 5.0);
    m.recordOutside(SimTime(600), 15.0);
    Summary s = m.outsideSummary();
    EXPECT_NEAR(s.avgWorstDailyRangeC, 10.0, 1e-9);
}

TEST(Engine, BaselineDayRunsAndCollects)
{
    environment::Location loc =
        environment::namedLocation(environment::NamedSite::Newark);
    environment::Climate climate = loc.makeClimate(5);

    plant::Plant plant(plant::PlantConfig::smoothParasol(), 5);
    workload::ClusterSim cluster({}, workload::steadyTrace(0.4, {}));
    BaselineController baseline;

    MetricsCollector metrics({}, 8);
    Engine engine(plant, cluster, baseline, climate);
    engine.setMetrics(&metrics);

    int rows = 0;
    engine.setTraceSink([&](const TraceRow &) { ++rows; });
    engine.runDay(150);

    Summary s = metrics.summary();
    EXPECT_EQ(s.days, 1u);
    EXPECT_EQ(rows, 1440);  // one sample per minute for a day
    EXPECT_GT(s.itKwh, 10.0);
    // A June day in Newark under the baseline: sane temperatures.
    EXPECT_LT(s.avgMaxInletC, 36.0);
    EXPECT_GT(s.avgMaxInletC, 15.0);
    EXPECT_LT(s.avgViolationC, 2.0);
}

TEST(Engine, ControllerEpochHonored)
{
    environment::Location loc =
        environment::namedLocation(environment::NamedSite::Newark);
    environment::Climate climate = loc.makeClimate(5);
    plant::Plant plant(plant::PlantConfig::smoothParasol(), 5);
    workload::ClusterSim cluster({}, workload::Trace{});

    // Counting controller.
    struct Counter : Controller
    {
        int calls = 0;
        ControlDecision control(const plant::SensorReadings &,
                                const workload::WorkloadStatus &,
                                const plant::PodLoad &,
                                util::SimTime) override
        {
            ++calls;
            ControlDecision d;
            d.regime = cooling::Regime::closed();
            return d;
        }
        int64_t epochS() const override { return 600; }
        const char *name() const override { return "counter"; }
    } counter;

    Engine engine(plant, cluster, counter, climate);
    engine.runRange(SimTime(0), SimTime(2 * kSecondsPerHour), false);
    EXPECT_EQ(counter.calls, 12);  // every 10 minutes for 2 h
}

TEST(Engine, DeterministicRuns)
{
    environment::Location loc =
        environment::namedLocation(environment::NamedSite::Iceland);
    environment::Climate climate = loc.makeClimate(6);

    auto run_once = [&]() {
        plant::Plant plant(plant::PlantConfig::smoothParasol(), 6);
        workload::ClusterSim cluster({}, workload::facebookTrace({}));
        BaselineController baseline;
        MetricsCollector metrics({}, 8);
        Engine engine(plant, cluster, baseline, climate);
        engine.setMetrics(&metrics);
        engine.runDay(30);
        return metrics.summary();
    };
    Summary a = run_once();
    Summary b = run_once();
    EXPECT_DOUBLE_EQ(a.avgWorstDailyRangeC, b.avgWorstDailyRangeC);
    EXPECT_DOUBLE_EQ(a.pue, b.pue);
    EXPECT_DOUBLE_EQ(a.coolingKwh, b.coolingKwh);
}
