/**
 * @file
 * Tests for the Forecaster: horizon semantics, accuracy against the
 * frozen climate, and error injection (§5.2 forecast-accuracy study).
 */

#include <gtest/gtest.h>

#include "environment/forecast.hpp"
#include "environment/location.hpp"

using namespace coolair;
using namespace coolair::environment;
using coolair::util::SimTime;
using coolair::util::kSecondsPerHour;

namespace {

Climate
testClimate()
{
    return namedLocation(NamedSite::Newark).makeClimate(3);
}

} // anonymous namespace

TEST(Forecaster, RestOfDayHourCount)
{
    Climate c = testClimate();
    Forecaster f(c);
    EXPECT_EQ(f.restOfDay(SimTime::fromCalendar(5, 0)).hours.size(), 24u);
    EXPECT_EQ(f.restOfDay(SimTime::fromCalendar(5, 9)).hours.size(), 15u);
    EXPECT_EQ(f.restOfDay(SimTime::fromCalendar(5, 23, 59)).hours.size(),
              1u);
}

TEST(Forecaster, FullDayCoversMidnightToMidnight)
{
    Climate c = testClimate();
    Forecaster f(c);
    Forecast fc = f.fullDay(SimTime::fromCalendar(5, 13));
    ASSERT_EQ(fc.hours.size(), 24u);
    EXPECT_EQ(fc.hours.front().hourStart.hourOfDay(), 0);
    EXPECT_EQ(fc.hours.front().hourStart.dayOfYear(), 5);
    EXPECT_EQ(fc.hours.back().hourStart.hourOfDay(), 23);
}

TEST(Forecaster, PerfectForecastMatchesClimate)
{
    Climate c = testClimate();
    Forecaster f(c);
    Forecast fc = f.fullDay(SimTime::fromCalendar(100, 0));
    for (const auto &h : fc.hours) {
        double truth = c.meanTemperature(
            h.hourStart, h.hourStart + kSecondsPerHour, 300);
        EXPECT_NEAR(h.tempC, truth, 1e-9);
    }
}

TEST(Forecaster, BiasShiftsEveryHour)
{
    Climate c = testClimate();
    Forecaster perfect(c);
    ForecastErrorModel err;
    err.biasC = 5.0;
    Forecaster biased(c, err);

    Forecast a = perfect.fullDay(SimTime::fromCalendar(50, 0));
    Forecast b = biased.fullDay(SimTime::fromCalendar(50, 0));
    ASSERT_EQ(a.hours.size(), b.hours.size());
    for (size_t i = 0; i < a.hours.size(); ++i)
        EXPECT_NEAR(b.hours[i].tempC - a.hours[i].tempC, 5.0, 1e-9);
    EXPECT_NEAR(b.meanTempC() - a.meanTempC(), 5.0, 1e-9);
}

TEST(Forecaster, NoiseIsZeroMeanish)
{
    Climate c = testClimate();
    ForecastErrorModel err;
    err.noiseStddevC = 1.0;
    Forecaster noisy(c, err, 77);
    Forecaster perfect(c);

    double sum = 0.0;
    int n = 0;
    for (int d = 0; d < 40; ++d) {
        Forecast a = noisy.fullDay(SimTime::fromCalendar(d, 0));
        Forecast b = perfect.fullDay(SimTime::fromCalendar(d, 0));
        for (size_t i = 0; i < a.hours.size(); ++i) {
            sum += a.hours[i].tempC - b.hours[i].tempC;
            ++n;
        }
    }
    EXPECT_NEAR(sum / n, 0.0, 0.2);
}

TEST(Forecast, MinMaxMeanConsistency)
{
    Climate c = testClimate();
    Forecaster f(c);
    Forecast fc = f.fullDay(SimTime::fromCalendar(200, 0));
    EXPECT_LE(fc.minTempC(), fc.meanTempC());
    EXPECT_GE(fc.maxTempC(), fc.meanTempC());
}

TEST(Forecast, EmptyForecast)
{
    Forecast fc;
    EXPECT_TRUE(fc.empty());
    EXPECT_DOUBLE_EQ(fc.meanTempC(), 0.0);
    EXPECT_DOUBLE_EQ(fc.minTempC(), 0.0);
}

TEST(Forecaster, HorizonStartsAtCurrentHour)
{
    Climate c = testClimate();
    Forecaster f(c);
    Forecast fc = f.horizon(SimTime::fromCalendar(10, 14, 37), 6);
    ASSERT_EQ(fc.hours.size(), 6u);
    EXPECT_EQ(fc.hours.front().hourStart.hourOfDay(), 14);
    EXPECT_EQ(fc.hours.back().hourStart.hourOfDay(), 19);
}
