/**
 * @file
 * Tests for cooling regimes, classification, and menus.
 */

#include <gtest/gtest.h>

#include "cooling/regime.hpp"

using namespace coolair::cooling;

TEST(Regime, FactoriesAndNormalization)
{
    EXPECT_EQ(Regime::closed().mode, Mode::Closed);

    Regime fc = Regime::freeCooling(0.5);
    EXPECT_EQ(fc.mode, Mode::FreeCooling);
    EXPECT_DOUBLE_EQ(fc.fanSpeed, 0.5);

    Regime ac = Regime::acCompressor(0.75);
    EXPECT_TRUE(ac.compressorOn);
    EXPECT_DOUBLE_EQ(ac.compressorSpeed, 0.75);

    // Normalization zeroes irrelevant fields.
    Regime weird = Regime::closed();
    weird.fanSpeed = 0.9;
    weird.compressorSpeed = 0.5;
    Regime norm = weird.normalized();
    EXPECT_DOUBLE_EQ(norm.fanSpeed, 0.0);
    EXPECT_DOUBLE_EQ(norm.compressorSpeed, 0.0);
}

TEST(Regime, SpeedsClamped)
{
    EXPECT_DOUBLE_EQ(Regime::freeCooling(1.7).fanSpeed, 1.0);
    EXPECT_DOUBLE_EQ(Regime::freeCooling(-0.5).fanSpeed, 0.0);
    EXPECT_DOUBLE_EQ(Regime::acCompressor(2.0).compressorSpeed, 1.0);
}

TEST(Regime, EqualityIgnoresIrrelevantFields)
{
    Regime a = Regime::closed();
    Regime b = Regime::closed();
    b.fanSpeed = 0.7;  // irrelevant for closed
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(Regime::freeCooling(0.2) == Regime::freeCooling(0.3));
    EXPECT_FALSE(Regime::acFanOnly() == Regime::acCompressor(1.0));
}

TEST(Regime, StringForms)
{
    EXPECT_EQ(Regime::closed().str(), "closed");
    EXPECT_EQ(Regime::freeCooling(0.5).str(), "fc@0.50");
    EXPECT_EQ(Regime::acFanOnly().str(), "ac-fan");
    EXPECT_EQ(Regime::acCompressor(1.0).str(), "ac+comp@1.00");
}

TEST(RegimeClass, BucketBoundaries)
{
    EXPECT_EQ(classify(Regime::closed()), RegimeClass::Closed);
    EXPECT_EQ(classify(Regime::freeCooling(0.01)), RegimeClass::FcLow);
    EXPECT_EQ(classify(Regime::freeCooling(0.33)), RegimeClass::FcLow);
    EXPECT_EQ(classify(Regime::freeCooling(0.34)), RegimeClass::FcMid);
    EXPECT_EQ(classify(Regime::freeCooling(0.66)), RegimeClass::FcMid);
    EXPECT_EQ(classify(Regime::freeCooling(0.67)), RegimeClass::FcHigh);
    EXPECT_EQ(classify(Regime::freeCooling(1.0)), RegimeClass::FcHigh);
    EXPECT_EQ(classify(Regime::acFanOnly()), RegimeClass::AcFanOnly);
    EXPECT_EQ(classify(Regime::acCompressor(0.4)),
              RegimeClass::AcCompressor);
}

TEST(TransitionKey, IndexBijective)
{
    bool seen[TransitionKey::count()] = {};
    for (int f = 0; f < kNumRegimeClasses; ++f) {
        for (int t = 0; t < kNumRegimeClasses; ++t) {
            TransitionKey key{RegimeClass(f), RegimeClass(t)};
            int idx = key.index();
            ASSERT_GE(idx, 0);
            ASSERT_LT(idx, TransitionKey::count());
            EXPECT_FALSE(seen[idx]);
            seen[idx] = true;
            EXPECT_EQ(key.isSteady(), f == t);
        }
    }
}

TEST(RegimeMenu, ParasolMatchesSection41)
{
    RegimeMenu menu = RegimeMenu::parasol();
    // Closed + 5 fan speeds + AC fan + AC compressor = 8 candidates.
    EXPECT_EQ(menu.candidates.size(), 8u);
    // The Dantherm unit cannot run below 15 %.
    for (const auto &r : menu.candidates) {
        if (r.mode == Mode::FreeCooling) {
            EXPECT_GE(r.fanSpeed, 0.15);
        }
    }
}

TEST(RegimeMenu, SmoothHasFineSpeeds)
{
    RegimeMenu menu = RegimeMenu::smooth();
    bool has_tiny_fan = false, has_partial_comp = false;
    for (const auto &r : menu.candidates) {
        if (r.mode == Mode::FreeCooling && r.fanSpeed < 0.05)
            has_tiny_fan = true;
        if (r.mode == Mode::AirConditioning && r.compressorOn &&
            r.compressorSpeed < 1.0) {
            has_partial_comp = true;
        }
    }
    EXPECT_TRUE(has_tiny_fan);
    EXPECT_TRUE(has_partial_comp);
}

TEST(Names, Strings)
{
    EXPECT_STREQ(modeName(Mode::Closed), "closed");
    EXPECT_STREQ(modeName(Mode::FreeCooling), "free-cooling");
    EXPECT_STREQ(regimeClassName(RegimeClass::AcCompressor), "ac-comp");
}
