/**
 * @file
 * Tests for the CoolAir facade: version presets (Table 1), daily band
 * refresh, and end-to-end control decisions on the learned bundle.
 */

#include <gtest/gtest.h>

#include "core/coolair.hpp"
#include "environment/location.hpp"
#include "sim/experiment.hpp"

using namespace coolair;
using namespace coolair::core;
using cooling::RegimeMenu;

namespace {

plant::SensorReadings
sensorsAt(double inlet_c, double outside_c)
{
    plant::SensorReadings s;
    s.podInletC.assign(8, inlet_c);
    s.coldAisleRhPercent = 50.0;
    s.coldAisleAbsHumidity = 8.0;
    s.outsideC = outside_c;
    s.outsideRhPercent = 50.0;
    s.outsideAbsHumidity = 6.0;
    s.itPowerW = 1500.0;
    s.dcUtilization = 1.0;
    return s;
}

workload::WorkloadStatus
statusWithDemand(int servers)
{
    workload::WorkloadStatus st;
    st.demandServers = servers;
    st.awakeServers = 64;
    return st;
}

} // anonymous namespace

TEST(CoolAirConfig, Table1Presets)
{
    RegimeMenu menu = RegimeMenu::smooth();

    CoolAirConfig temp =
        CoolAirConfig::forVersion(Version::Temperature, menu);
    EXPECT_EQ(temp.bandMode, BandMode::None);
    EXPECT_FALSE(temp.utility.penalizeBand);
    EXPECT_TRUE(temp.utility.energyAware);
    EXPECT_EQ(temp.compute.placement, Placement::LowRecircFirst);
    EXPECT_NEAR(temp.utility.maxTempC, 29.0, 1e-9);  // lower setpoint

    CoolAirConfig var = CoolAirConfig::forVersion(Version::Variation, menu);
    EXPECT_EQ(var.bandMode, BandMode::Adaptive);
    EXPECT_FALSE(var.utility.energyAware);
    EXPECT_EQ(var.compute.placement, Placement::HighRecircFirst);
    EXPECT_EQ(var.compute.temporal, TemporalPolicy::None);

    CoolAirConfig energy = CoolAirConfig::forVersion(Version::Energy, menu);
    EXPECT_EQ(energy.bandMode, BandMode::None);
    EXPECT_TRUE(energy.utility.energyAware);
    EXPECT_NEAR(energy.utility.maxTempC, 30.0, 1e-9);

    CoolAirConfig all = CoolAirConfig::forVersion(Version::AllNd, menu);
    EXPECT_EQ(all.bandMode, BandMode::Adaptive);
    EXPECT_TRUE(all.utility.energyAware);
    EXPECT_EQ(all.compute.placement, Placement::HighRecircFirst);

    CoolAirConfig def = CoolAirConfig::forVersion(Version::AllDef, menu);
    EXPECT_EQ(def.compute.temporal, TemporalPolicy::BandHours);
    EXPECT_EQ(def.compute.placement, Placement::LowRecircFirst);

    CoolAirConfig edef =
        CoolAirConfig::forVersion(Version::EnergyDef, menu);
    EXPECT_EQ(edef.compute.temporal, TemporalPolicy::ColdHours);

    CoolAirConfig vlr =
        CoolAirConfig::forVersion(Version::VarLowRecirc, menu);
    EXPECT_EQ(vlr.bandMode, BandMode::Fixed);
    EXPECT_NEAR(vlr.fixedBandLowC, 25.0, 1e-9);
    EXPECT_NEAR(vlr.fixedBandHighC, 30.0, 1e-9);
    EXPECT_EQ(vlr.compute.placement, Placement::LowRecircFirst);

    CoolAirConfig vhr =
        CoolAirConfig::forVersion(Version::VarHighRecirc, menu);
    EXPECT_EQ(vhr.compute.placement, Placement::HighRecircFirst);
}

TEST(CoolAirConfig, MaxTempParameterPropagates)
{
    RegimeMenu menu = RegimeMenu::smooth();
    CoolAirConfig c =
        CoolAirConfig::forVersion(Version::AllNd, menu, 25.0);
    EXPECT_NEAR(c.band.maxC, 25.0, 1e-9);
    EXPECT_NEAR(c.utility.maxTempC, 25.0, 1e-9);
}

TEST(VersionName, Strings)
{
    EXPECT_STREQ(versionName(Version::AllNd), "All-ND");
    EXPECT_STREQ(versionName(Version::EnergyDef), "Energy-DEF");
}

TEST(CoolAir, BandRefreshesDaily)
{
    environment::Location loc =
        environment::namedLocation(environment::NamedSite::Newark);
    environment::Climate climate = loc.makeClimate(3);
    environment::Forecaster forecaster(climate);

    CoolAirConfig cfg =
        CoolAirConfig::forVersion(Version::AllNd, RegimeMenu::smooth());
    CoolAir ca(cfg, sim::sharedBundle(), &forecaster);

    plant::PodLoad load = plant::PodLoad::uniform(8, 8, 0.5);

    // Winter day: band hugs Min.
    auto d1 = ca.control(sensorsAt(22.0, 0.0), statusWithDemand(20), load,
                         util::SimTime::fromCalendar(10, 0));
    // Summer day: band slides under Max.
    auto d2 = ca.control(sensorsAt(22.0, 28.0), statusWithDemand(20), load,
                         util::SimTime::fromCalendar(190, 0));
    EXPECT_LT(d1.band.center(), d2.band.center());
    EXPECT_LE(d2.band.highC, 30.0 + 1e-9);
    EXPECT_GE(d1.band.lowC, 10.0 - 1e-9);
}

TEST(CoolAir, HotInsidePicksActiveCooling)
{
    environment::Location loc =
        environment::namedLocation(environment::NamedSite::Newark);
    environment::Climate climate = loc.makeClimate(3);
    environment::Forecaster forecaster(climate);

    CoolAirConfig cfg =
        CoolAirConfig::forVersion(Version::AllNd, RegimeMenu::smooth());
    CoolAir ca(cfg, sim::sharedBundle(), &forecaster);

    plant::PodLoad load = plant::PodLoad::uniform(8, 8, 0.8);
    // 36 C inside with 12 C outside on a summer day: must cool, and
    // free cooling is available and cheap.
    auto d = ca.control(sensorsAt(36.0, 12.0), statusWithDemand(40), load,
                        util::SimTime::fromCalendar(190, 12));
    EXPECT_EQ(d.regime.mode, cooling::Mode::FreeCooling);
    EXPECT_GT(d.regime.fanSpeed, 0.0);
}

TEST(CoolAir, PlanReflectsVersionPolicy)
{
    environment::Location loc =
        environment::namedLocation(environment::NamedSite::Newark);
    environment::Climate climate = loc.makeClimate(3);
    environment::Forecaster forecaster(climate);

    CoolAirConfig cfg =
        CoolAirConfig::forVersion(Version::AllNd, RegimeMenu::smooth());
    CoolAir ca(cfg, sim::sharedBundle(), &forecaster);

    plant::PodLoad load = plant::PodLoad::uniform(8, 8, 0.5);
    auto d = ca.control(sensorsAt(26.0, 15.0), statusWithDemand(16), load,
                        util::SimTime::fromCalendar(100, 6));
    EXPECT_TRUE(d.plan.manageServerStates);
    EXPECT_GE(d.plan.targetActiveServers, 16);
    ASSERT_EQ(d.plan.podOrder.size(), 8u);
    // High-recirc-first: pod 7 (highest exposure) leads the order.
    EXPECT_EQ(d.plan.podOrder.front(), 7);
}

TEST(CoolAir, DecisionIsDeterministic)
{
    environment::Location loc =
        environment::namedLocation(environment::NamedSite::Iceland);
    environment::Climate climate = loc.makeClimate(3);
    environment::Forecaster f1(climate), f2(climate);

    CoolAirConfig cfg =
        CoolAirConfig::forVersion(Version::Variation, RegimeMenu::smooth());
    CoolAir a(cfg, sim::sharedBundle(), &f1);
    CoolAir b(cfg, sim::sharedBundle(), &f2);

    plant::PodLoad load = plant::PodLoad::uniform(8, 8, 0.5);
    auto da = a.control(sensorsAt(24.0, 5.0), statusWithDemand(20), load,
                        util::SimTime::fromCalendar(40, 3));
    auto db = b.control(sensorsAt(24.0, 5.0), statusWithDemand(20), load,
                        util::SimTime::fromCalendar(40, 3));
    EXPECT_TRUE(da.regime == db.regime);
    EXPECT_DOUBLE_EQ(da.penalty, db.penalty);
}
