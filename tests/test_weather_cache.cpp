/**
 * @file
 * CachedWeatherProvider equivalence: the cache is an exact memo, so
 * every sample — on-grid (served from the table) or off-grid (passed
 * through) — must equal the direct Climate evaluation bit for bit, and
 * whole year runs must produce identical metrics with the cache on or
 * off across actuator styles and systems.
 */

#include <gtest/gtest.h>

#include "environment/location.hpp"
#include "environment/weather_cache.hpp"
#include "sim/scenario.hpp"
#include "util/sim_time.hpp"

using namespace coolair;

namespace {

void
expectSampleEq(const environment::WeatherSample &a,
               const environment::WeatherSample &b)
{
    EXPECT_EQ(a.tempC, b.tempC);
    EXPECT_EQ(a.rhPercent, b.rhPercent);
    EXPECT_EQ(a.absHumidity, b.absHumidity);
}

TEST(WeatherCacheGrid, StepSelection)
{
    // gcd with the forecaster's 300 s stride, day-aligned.
    EXPECT_EQ(30, environment::weatherCacheGridStepS(30.0));
    EXPECT_EQ(60, environment::weatherCacheGridStepS(60.0));
    EXPECT_EQ(300, environment::weatherCacheGridStepS(300.0));
    EXPECT_EQ(100, environment::weatherCacheGridStepS(700.0));
    // Non-integral or nonpositive steps disable caching.
    EXPECT_EQ(0, environment::weatherCacheGridStepS(30.5));
    EXPECT_EQ(0, environment::weatherCacheGridStepS(0.0));
    EXPECT_EQ(0, environment::weatherCacheGridStepS(-30.0));
}

TEST(WeatherCache, GridSamplesBitIdentical)
{
    environment::Climate climate =
        environment::namedLocation(environment::NamedSite::Newark)
            .makeClimate(7);
    environment::CachedWeatherProvider cached(climate, 30);

    // Two days of grid queries, each asked twice (fill + hit), against
    // the direct evaluation — including the negative warm-up stretch a
    // YearWeekly run starts from.
    for (int64_t t = -2 * 3600; t < 2 * util::kSecondsPerDay; t += 30) {
        util::SimTime now(t);
        expectSampleEq(climate.sample(now), cached.sample(now));
        expectSampleEq(climate.sample(now), cached.sample(now));
    }
    // Each grid instant was evaluated through the inner provider once.
    int64_t instants = (2 * util::kSecondsPerDay + 2 * 3600) / 30;
    EXPECT_EQ(instants, cached.underlyingEvals());
}

TEST(WeatherCache, BlockEvictionRefillsExactly)
{
    environment::Climate climate =
        environment::namedLocation(environment::NamedSite::Santiago)
            .makeClimate(11);
    environment::CachedWeatherProvider cached(climate, 60);

    util::SimTime day0(int64_t(0));
    util::SimTime day5(5 * util::kSecondsPerDay);
    util::SimTime day9(9 * util::kSecondsPerDay);

    // Visit three distinct day blocks (only two are resident), then
    // return to the first: its block was evicted and must refill with
    // exactly the same values.
    environment::WeatherSample first = cached.sample(day0);
    cached.sample(day5);
    cached.sample(day9);
    environment::WeatherSample again = cached.sample(day0);
    expectSampleEq(first, again);
    expectSampleEq(climate.sample(day0), again);
}

TEST(WeatherCache, OffGridFallsThrough)
{
    environment::Climate climate =
        environment::namedLocation(environment::NamedSite::Newark)
            .makeClimate(3);
    environment::CachedWeatherProvider cached(climate, 60);

    util::SimTime off(int64_t(61));  // not on the 60 s grid
    expectSampleEq(climate.sample(off), cached.sample(off));
    int64_t evals = cached.underlyingEvals();
    cached.sample(off);  // never memoized: evaluates again
    EXPECT_EQ(evals + 1, cached.underlyingEvals());
}

/**
 * The run-level lock: with the cache on (the default) a year run's
 * metrics are bit-identical to the uncached direct-Climate path, across
 * {Abrupt, Smooth} x {Baseline, AllNd}.
 */
class WeatherCacheYearEquivalence
    : public ::testing::TestWithParam<
          std::tuple<cooling::ActuatorStyle, sim::SystemId>>
{
};

TEST_P(WeatherCacheYearEquivalence, MetricsIdentical)
{
    sim::ExperimentSpec spec;
    spec.location =
        environment::namedLocation(environment::NamedSite::Newark);
    spec.style = std::get<0>(GetParam());
    spec.system = std::get<1>(GetParam());
    spec.weeks = 2;

    sim::ExperimentSpec direct = spec;
    direct.weatherCache = false;

    sim::ExperimentResult cached = sim::runExperiment(spec);
    sim::ExperimentResult uncached = sim::runExperiment(direct);

    EXPECT_EQ(cached.system.avgViolationC, uncached.system.avgViolationC);
    EXPECT_EQ(cached.system.avgWorstDailyRangeC,
              uncached.system.avgWorstDailyRangeC);
    EXPECT_EQ(cached.system.minWorstDailyRangeC,
              uncached.system.minWorstDailyRangeC);
    EXPECT_EQ(cached.system.maxWorstDailyRangeC,
              uncached.system.maxWorstDailyRangeC);
    EXPECT_EQ(cached.system.pue, uncached.system.pue);
    EXPECT_EQ(cached.system.itKwh, uncached.system.itKwh);
    EXPECT_EQ(cached.system.coolingKwh, uncached.system.coolingKwh);
    EXPECT_EQ(cached.system.humidityViolationFrac,
              uncached.system.humidityViolationFrac);
    EXPECT_EQ(cached.system.rateViolationFrac,
              uncached.system.rateViolationFrac);
    EXPECT_EQ(cached.system.avgMaxInletC, uncached.system.avgMaxInletC);
    EXPECT_EQ(cached.system.days, uncached.system.days);
    EXPECT_EQ(cached.outside.avgMaxInletC, uncached.outside.avgMaxInletC);
    EXPECT_EQ(cached.outside.pue, uncached.outside.pue);
}

INSTANTIATE_TEST_SUITE_P(
    StylesAndSystems, WeatherCacheYearEquivalence,
    ::testing::Combine(::testing::Values(cooling::ActuatorStyle::Abrupt,
                                         cooling::ActuatorStyle::Smooth),
                       ::testing::Values(sim::SystemId::Baseline,
                                         sim::SystemId::AllNd)));

} // anonymous namespace
