/**
 * @file
 * Scenario-layer tests: the refactor contract (Scenario-built year runs
 * are bit-identical to the pre-refactor assembly), builder overrides,
 * run kinds, trace sinks, CSV dumping, spec-key exhaustiveness, and
 * strict parse errors.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <stdexcept>

#include "environment/location.hpp"
#include "obs/stats.hpp"
#include "sim/engine.hpp"
#include "sim/scenario.hpp"
#include "sim/result_cache.hpp"
#include "sim/spec_io.hpp"
#include "sim/trace_csv.hpp"
#include "workload/cluster.hpp"
#include "workload/trace_gen.hpp"

using namespace coolair;

namespace {

/**
 * A verbatim copy of the pre-refactor runYearExperiment assembly (the
 * bespoke construction the scenario layer replaced).  The parity test
 * below locks the refactor to this behavior bit for bit.
 */
workload::Trace
legacyTraceFor(sim::WorkloadKind kind, sim::SystemId system, uint64_t seed)
{
    workload::TraceGenConfig tg;
    tg.seed = seed;
    workload::Trace trace;
    switch (kind) {
      case sim::WorkloadKind::Facebook:
      case sim::WorkloadKind::FacebookProfile:
        trace = workload::facebookTrace(tg);
        break;
      case sim::WorkloadKind::Nutch:
        trace = workload::nutchTrace(tg);
        break;
      case sim::WorkloadKind::SteadyHalf:
        trace = workload::steadyTrace(0.5, tg);
        break;
    }
    if (sim::systemIsDeferrable(system))
        trace.makeDeferrable(6.0);
    return trace;
}

sim::ExperimentResult
legacyRunYearExperiment(const sim::ExperimentSpec &spec)
{
    plant::PlantConfig pc = spec.style == cooling::ActuatorStyle::Abrupt
                                ? plant::PlantConfig::parasol()
                                : plant::PlantConfig::smoothParasol();
    if (spec.variant == sim::PlantVariant::Evaporative)
        pc = plant::PlantConfig::smoothParasolEvaporative();
    else if (spec.variant == sim::PlantVariant::Chiller)
        pc = plant::PlantConfig::smoothParasolChiller();
    plant::Plant plant(pc, spec.seed);

    environment::Climate climate = spec.location.makeClimate(spec.seed);
    environment::Forecaster forecaster(climate, spec.forecastError,
                                       spec.seed);

    std::unique_ptr<workload::WorkloadModel> workload;
    workload::ClusterConfig cc;
    if (spec.workload == sim::WorkloadKind::FacebookProfile) {
        workload = std::make_unique<workload::ProfileWorkload>(
            cc, sim::sharedFacebookProfile());
    } else {
        workload = std::make_unique<workload::ClusterSim>(
            cc, legacyTraceFor(spec.workload, spec.system, spec.seed));
    }

    std::unique_ptr<sim::Controller> controller;
    if (spec.system == sim::SystemId::Baseline) {
        cooling::TksConfig tks = cooling::TksConfig::extendedBaseline();
        tks.setpointC = spec.maxTempC;
        controller = std::make_unique<sim::BaselineController>(tks);
    } else {
        cooling::RegimeMenu menu =
            spec.style == cooling::ActuatorStyle::Abrupt
                ? cooling::RegimeMenu::parasol()
                : cooling::RegimeMenu::smooth();
        const model::LearnedBundle *bundle = &sim::sharedBundle();
        if (spec.variant == sim::PlantVariant::Evaporative) {
            menu = cooling::RegimeMenu::smoothWithEvaporative();
            bundle = &sim::sharedEvaporativeBundle();
        }
        core::CoolAirConfig config = core::CoolAirConfig::forVersion(
            sim::systemVersion(spec.system), menu, spec.maxTempC);
        controller = std::make_unique<sim::CoolAirController>(
            config, *bundle, &forecaster, sim::systemName(spec.system));
    }

    sim::MetricsConfig mc;
    mc.maxTempC = spec.maxTempC;
    sim::MetricsCollector metrics(mc, pc.numPods);

    sim::EngineConfig ec;
    ec.physicsStepS = spec.physicsStepS;
    ec.sampleIntervalS = std::max<int64_t>(60, int64_t(spec.physicsStepS));
    sim::Engine engine(plant, *workload, *controller, climate, ec);
    engine.setMetrics(&metrics);
    engine.runYearWeekly(spec.weeks);

    sim::ExperimentResult result;
    result.system = metrics.summary();
    result.outside = metrics.outsideSummary();
    return result;
}

void
expectSummaryEq(const sim::Summary &a, const sim::Summary &b)
{
    EXPECT_EQ(a.avgViolationC, b.avgViolationC);
    EXPECT_EQ(a.avgWorstDailyRangeC, b.avgWorstDailyRangeC);
    EXPECT_EQ(a.minWorstDailyRangeC, b.minWorstDailyRangeC);
    EXPECT_EQ(a.maxWorstDailyRangeC, b.maxWorstDailyRangeC);
    EXPECT_EQ(a.pue, b.pue);
    EXPECT_EQ(a.itKwh, b.itKwh);
    EXPECT_EQ(a.coolingKwh, b.coolingKwh);
    EXPECT_EQ(a.humidityViolationFrac, b.humidityViolationFrac);
    EXPECT_EQ(a.rateViolationFrac, b.rateViolationFrac);
    EXPECT_EQ(a.avgMaxInletC, b.avgMaxInletC);
    EXPECT_EQ(a.days, b.days);
}

sim::ExperimentSpec
newarkSpec()
{
    sim::ExperimentSpec spec;
    spec.location =
        environment::namedLocation(environment::NamedSite::Newark);
    return spec;
}

} // anonymous namespace

// ---------------------------------------------------------------------------
// Parity: the scenario layer reproduces the pre-refactor assembly
// bit for bit across actuator styles and system kinds.
// ---------------------------------------------------------------------------

struct ParityCase
{
    cooling::ActuatorStyle style;
    sim::SystemId system;
};

class ScenarioParity : public ::testing::TestWithParam<ParityCase>
{
};

TEST_P(ScenarioParity, MatchesLegacyAssembly)
{
    sim::ExperimentSpec spec = newarkSpec();
    spec.style = GetParam().style;
    spec.system = GetParam().system;
    spec.weeks = 2;

    sim::ExperimentResult legacy = legacyRunYearExperiment(spec);
    sim::ExperimentResult scenario = sim::runYearExperiment(spec);

    expectSummaryEq(legacy.system, scenario.system);
    expectSummaryEq(legacy.outside, scenario.outside);
}

INSTANTIATE_TEST_SUITE_P(
    StylesAndSystems, ScenarioParity,
    ::testing::Values(
        ParityCase{cooling::ActuatorStyle::Abrupt, sim::SystemId::Baseline},
        ParityCase{cooling::ActuatorStyle::Smooth, sim::SystemId::Baseline},
        ParityCase{cooling::ActuatorStyle::Abrupt, sim::SystemId::AllNd},
        ParityCase{cooling::ActuatorStyle::Smooth, sim::SystemId::AllNd}));

// Observability must never perturb the simulation: the same spec run
// with global stats collection enabled produces bit-identical metrics,
// and the harvested registry sees the run.
TEST_P(ScenarioParity, ObsEnabledDoesNotChangeMetrics)
{
    sim::ExperimentSpec spec = newarkSpec();
    spec.style = GetParam().style;
    spec.system = GetParam().system;
    spec.weeks = 2;

    sim::ExperimentResult off = sim::runYearExperiment(spec);

    obs::registry().clear();
    obs::setEnabled(true);
    sim::ExperimentResult on = sim::runYearExperiment(spec);
    obs::setEnabled(false);

    expectSummaryEq(off.system, on.system);
    expectSummaryEq(off.outside, on.outside);
    EXPECT_GT(obs::registry().counter("engine.steps").value(), 0);
    obs::registry().clear();
}

// ---------------------------------------------------------------------------
// Run kinds and entry points.
// ---------------------------------------------------------------------------

TEST(Scenario, SingleDayRunsOneDay)
{
    sim::ExperimentSpec spec = newarkSpec();
    spec.runKind = sim::RunKind::SingleDay;
    spec.day = 100;
    sim::ExperimentResult r = sim::runExperiment(spec);
    EXPECT_EQ(r.system.days, 1);
}

TEST(Scenario, DayRangeCoversRange)
{
    sim::ExperimentSpec spec = newarkSpec();
    spec.runKind = sim::RunKind::DayRange;
    spec.startDay = 40;
    spec.endDay = 43;
    sim::ExperimentResult r = sim::runExperiment(spec);
    EXPECT_EQ(r.system.days, 3);
}

TEST(Scenario, RunYearExperimentForcesYearProtocol)
{
    sim::ExperimentSpec spec = newarkSpec();
    spec.runKind = sim::RunKind::SingleDay;  // must be overridden
    spec.weeks = 1;
    sim::ExperimentResult forced = sim::runYearExperiment(spec);

    spec.runKind = sim::RunKind::YearWeekly;
    sim::ExperimentResult year = sim::runExperiment(spec);
    expectSummaryEq(forced.system, year.system);
}

TEST(Scenario, InvalidSpecsThrowWithLegacyMessages)
{
    sim::ExperimentSpec spec = newarkSpec();
    spec.weeks = 0;
    try {
        sim::runYearExperiment(spec);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_STREQ("ExperimentSpec: weeks must be positive", e.what());
    }

    spec = newarkSpec();
    spec.physicsStepS = 0.0;
    try {
        sim::runExperiment(spec);
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_STREQ("ExperimentSpec: physics step must be positive",
                     e.what());
    }

    spec = newarkSpec();
    spec.runKind = sim::RunKind::DayRange;
    spec.startDay = 10;
    spec.endDay = 10;
    EXPECT_THROW(sim::runExperiment(spec), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Builder overrides and trace sinks.
// ---------------------------------------------------------------------------

TEST(ScenarioBuilder, ControllerOverrideIsUsed)
{
    sim::ExperimentSpec spec = newarkSpec();
    spec.runKind = sim::RunKind::SingleDay;
    spec.day = 186;

    auto scenario =
        sim::ScenarioBuilder(spec)
            .withController(std::make_unique<sim::FixedRegimeController>(
                cooling::Regime::freeCooling(0.6)))
            .build();
    EXPECT_STREQ("Fixed-Regime", scenario->controller().name());
    sim::ExperimentResult r = scenario->run();
    EXPECT_EQ(r.system.days, 1);
}

TEST(ScenarioBuilder, TraceSinksFanOut)
{
    sim::ExperimentSpec spec = newarkSpec();
    spec.runKind = sim::RunKind::SingleDay;
    spec.day = 50;

    int a = 0, b = 0;
    auto scenario =
        sim::ScenarioBuilder(spec)
            .withTraceSink([&](const sim::TraceRow &) { ++a; })
            .withTraceSink([&](const sim::TraceRow &) { ++b; })
            .build();
    scenario->run();
    EXPECT_GT(a, 0);
    EXPECT_EQ(a, b);
    // One row per sample interval over the measured day.
    EXPECT_EQ(a, 24 * 60);
}

TEST(ScenarioBuilder, TraceCsvPathWritesCanonicalCsv)
{
    std::string path = ::testing::TempDir() + "scenario_trace.csv";
    std::remove(path.c_str());

    sim::ExperimentSpec spec = newarkSpec();
    spec.runKind = sim::RunKind::SingleDay;
    spec.day = 10;
    spec.traceCsvPath = path;
    sim::runExperiment(spec);

    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::string header;
    ASSERT_TRUE(std::getline(in, header));
    std::ostringstream expected;
    sim::writeTraceCsvHeader(expected);
    EXPECT_EQ(expected.str(), header + "\n");
    int rows = 0;
    std::string line;
    while (std::getline(in, line))
        if (!line.empty())
            ++rows;
    EXPECT_EQ(rows, 24 * 60);
    std::remove(path.c_str());
}

TEST(ScenarioBuilder, MetricsConfigOverride)
{
    sim::ExperimentSpec spec = newarkSpec();
    spec.runKind = sim::RunKind::SingleDay;
    spec.day = 200;

    sim::MetricsConfig mc;
    mc.maxTempC = 20.0;  // everything violates a 20 C ceiling in July
    auto strict = sim::ScenarioBuilder(spec).withMetricsConfig(mc).build();
    sim::Summary s = strict->run().system;

    sim::Summary normal = sim::runExperiment(spec).system;
    EXPECT_GT(s.avgViolationC, normal.avgViolationC);
}

// ---------------------------------------------------------------------------
// Factories.
// ---------------------------------------------------------------------------

TEST(ScenarioFactories, PlantConfigFollowsStyleAndVariant)
{
    sim::ExperimentSpec spec;
    spec.style = cooling::ActuatorStyle::Abrupt;
    EXPECT_EQ(sim::plantConfigFor(spec).actuators.style,
              cooling::ActuatorStyle::Abrupt);
    spec.style = cooling::ActuatorStyle::Smooth;
    EXPECT_EQ(sim::plantConfigFor(spec).actuators.style,
              cooling::ActuatorStyle::Smooth);
    spec.variant = sim::PlantVariant::Evaporative;
    EXPECT_TRUE(sim::plantConfigFor(spec).hasEvaporativeCooler);
}

TEST(ScenarioFactories, CoolairConfigAppliesOverrides)
{
    sim::ExperimentSpec spec;
    spec.system = sim::SystemId::AllNd;

    core::CoolAirConfig preset = sim::coolairConfigFor(spec);
    spec.bandWidthC = 2.5;
    spec.switchPenalty = 0.0;
    spec.horizonSteps = 3;
    core::CoolAirConfig tuned = sim::coolairConfigFor(spec);

    EXPECT_EQ(2.5, tuned.band.widthC);
    EXPECT_EQ(0.0, tuned.utility.switchPenalty);
    EXPECT_EQ(3, tuned.horizonSteps);
    // Untouched knobs keep the preset values.
    EXPECT_EQ(preset.band.offsetC, tuned.band.offsetC);
    EXPECT_EQ(preset.compute.sleepDecayPerEpoch,
              tuned.compute.sleepDecayPerEpoch);
}

TEST(ScenarioFactories, DeferrableSystemsGetDeferrableTraces)
{
    sim::ExperimentSpec spec;
    spec.workload = sim::WorkloadKind::Facebook;
    spec.system = sim::SystemId::AllDef;
    workload::Trace def = sim::traceForSpec(spec);
    spec.system = sim::SystemId::AllNd;
    workload::Trace nd = sim::traceForSpec(spec);

    ASSERT_FALSE(def.jobs.empty());
    ASSERT_EQ(def.jobs.size(), nd.jobs.size());
    bool any_slack = false;
    for (size_t i = 0; i < def.jobs.size(); ++i)
        any_slack |=
            def.jobs[i].startDeadlineS > nd.jobs[i].startDeadlineS;
    EXPECT_TRUE(any_slack);
}

// ---------------------------------------------------------------------------
// Spec keys: exhaustive enum round trips and strict parse errors.
// ---------------------------------------------------------------------------

TEST(SpecIo, EveryEnumKeyRoundTrips)
{
    for (sim::SystemId id : sim::allSystemIds()) {
        sim::ExperimentSpec spec;
        sim::applySpecAssignment(
            spec, std::string("system=") + sim::systemKey(id));
        EXPECT_EQ(id, spec.system);
    }
    for (sim::WorkloadKind kind :
         {sim::WorkloadKind::Facebook, sim::WorkloadKind::Nutch,
          sim::WorkloadKind::FacebookProfile, sim::WorkloadKind::SteadyHalf}) {
        sim::ExperimentSpec spec;
        sim::applySpecAssignment(
            spec, std::string("workload=") + sim::workloadKey(kind));
        EXPECT_EQ(kind, spec.workload);
    }
    for (sim::PlantVariant variant :
         {sim::PlantVariant::Standard, sim::PlantVariant::Evaporative,
          sim::PlantVariant::Chiller}) {
        sim::ExperimentSpec spec;
        sim::applySpecAssignment(
            spec, std::string("variant=") + sim::variantKey(variant));
        EXPECT_EQ(variant, spec.variant);
    }
    for (cooling::ActuatorStyle style : {cooling::ActuatorStyle::Abrupt,
                                         cooling::ActuatorStyle::Smooth}) {
        sim::ExperimentSpec spec;
        sim::applySpecAssignment(
            spec, std::string("style=") + sim::styleKey(style));
        EXPECT_EQ(style, spec.style);
    }
    for (sim::RunKind kind : {sim::RunKind::YearWeekly, sim::RunKind::SingleDay,
                              sim::RunKind::DayRange}) {
        sim::ExperimentSpec spec;
        sim::applySpecAssignment(
            spec, std::string("run=") + sim::runKindKey(kind));
        EXPECT_EQ(kind, spec.runKind);
    }
    for (environment::NamedSite site : environment::allNamedSites()) {
        sim::ExperimentSpec spec;
        sim::applySpecAssignment(spec,
                                 std::string("site=") + sim::siteKey(site));
        EXPECT_EQ(environment::namedLocation(site), spec.location);
    }
}

TEST(SpecIo, StrictParseErrors)
{
    sim::ExperimentSpec spec;
    EXPECT_THROW(sim::applySpecAssignment(spec, "no_such_key=1"),
                 std::invalid_argument);
    EXPECT_THROW(sim::applySpecAssignment(spec, "max_temp=warm"),
                 std::invalid_argument);
    EXPECT_THROW(sim::applySpecAssignment(spec, "system=coldair"),
                 std::invalid_argument);
    EXPECT_THROW(sim::applySpecAssignment(spec, "weeks=12.5"),
                 std::invalid_argument);
    EXPECT_THROW(sim::applySpecAssignment(spec, "seed=-1"),
                 std::invalid_argument);
    EXPECT_THROW(sim::applySpecAssignment(spec, "just a sentence"),
                 std::invalid_argument);
    EXPECT_THROW(sim::applySpecText(spec, "weeks = 3\nbogus = 1\n"),
                 std::invalid_argument);
    EXPECT_EQ(3, spec.weeks);  // assignments before the error applied

    // Comments and blank lines are fine.
    sim::applySpecText(spec, "# comment\n\n  weeks = 7 \n");
    EXPECT_EQ(7, spec.weeks);
}

TEST(SpecIo, ParseErrorsNameKeyAndLine)
{
    sim::ExperimentSpec spec;
    try {
        sim::applySpecText(spec, "# header\nweeks = 3\nbogus = 1\n");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_STREQ("spec line 3: unknown key 'bogus'", e.what());
    }

    // Comments and blank lines still count toward the line number, and
    // the message names the offending key even for bad values.
    try {
        sim::applySpecText(spec, "weeks = 3\n\n# note\n  max_temp = warm\n");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        std::string what = e.what();
        EXPECT_NE(std::string::npos, what.find("spec line 4")) << what;
        EXPECT_NE(std::string::npos, what.find("max_temp")) << what;
        EXPECT_NE(std::string::npos, what.find("warm")) << what;
    }

    try {
        sim::applySpecText(spec, "weeks = 3\njust a sentence\n");
        FAIL() << "expected std::invalid_argument";
    } catch (const std::invalid_argument &e) {
        EXPECT_NE(std::string::npos,
                  std::string(e.what()).find("spec line 2"))
            << e.what();
    }
}

TEST(SpecIo, CacheKeysRoundTrip)
{
    sim::ExperimentSpec spec = newarkSpec();
    spec.resultCache = false;
    spec.cacheDirPath = "/tmp/coolair-results";
    std::string text = sim::formatSpec(spec);
    EXPECT_NE(std::string::npos, text.find("result_cache = false"));
    EXPECT_NE(std::string::npos,
              text.find("cache_dir = /tmp/coolair-results"));
    EXPECT_EQ(spec, sim::parseSpec(text));

    // The defaults (cache on, no directory) are not emitted, so specs
    // written before the cache existed keep their canonical text.
    text = sim::formatSpec(newarkSpec());
    EXPECT_EQ(std::string::npos, text.find("result_cache"));
    EXPECT_EQ(std::string::npos, text.find("cache_dir"));
}

TEST(SpecIo, BatchKeyRoundTripsAndIsStrict)
{
    // batch=0 (the scalar path) is the default and omitted from the
    // canonical text; a batched spec round-trips exactly.
    sim::ExperimentSpec spec = newarkSpec();
    EXPECT_EQ(std::string::npos, sim::formatSpec(spec).find("batch"));

    spec.batch = 8;
    std::string text = sim::formatSpec(spec);
    EXPECT_NE(std::string::npos, text.find("batch = 8"));
    EXPECT_EQ(spec, sim::parseSpec(text));

    // Strict integer parsing: trailing junk, non-numbers, negatives and
    // absurd widths are rejected, never truncated or wrapped.
    sim::ExperimentSpec target;
    EXPECT_THROW(sim::applySpecAssignment(target, "batch=8x"),
                 std::invalid_argument);
    EXPECT_THROW(sim::applySpecAssignment(target, "batch=wide"),
                 std::invalid_argument);
    EXPECT_THROW(sim::applySpecAssignment(target, "batch=-1"),
                 std::invalid_argument);
    EXPECT_THROW(sim::applySpecAssignment(target, "batch=1025"),
                 std::invalid_argument);
    EXPECT_THROW(sim::applySpecAssignment(target, "batch=2.5"),
                 std::invalid_argument);
    sim::applySpecAssignment(target, "batch=16");
    EXPECT_EQ(16, target.batch);
}

TEST(SpecIo, BatchKeyGivesDistinctCacheIdentity)
{
    // A batched run honors a tolerance contract, not bit-identity, so
    // its results must never alias the scalar ones in the result store.
    sim::ExperimentSpec scalar = newarkSpec();
    scalar.cacheDirPath = "/tmp/coolair-results";
    sim::ExperimentSpec batched = scalar;
    batched.batch = 8;
    EXPECT_NE(sim::resultCacheId(scalar), sim::resultCacheId(batched));

    // Output paths still do not contribute to either identity.
    sim::ExperimentSpec batched_with_report = batched;
    batched_with_report.reportJsonPath = "/tmp/report.json";
    EXPECT_EQ(sim::resultCacheId(batched),
              sim::resultCacheId(batched_with_report));
}

// ---------------------------------------------------------------------------
// Result serialization (the persistent result store's payload form).
// ---------------------------------------------------------------------------

namespace {

sim::ExperimentResult
awkwardResult()
{
    // Values chosen to break lossy round trips: repeating binary
    // fractions, tiny magnitudes, and sums that differ from their
    // decimal spelling in the last ulp.
    sim::ExperimentResult r;
    r.system.avgViolationC = 1.0 / 3.0;
    r.system.avgWorstDailyRangeC = 0.1 + 0.2;
    r.system.minWorstDailyRangeC = -0.0;
    r.system.maxWorstDailyRangeC = 18.600000000000001;
    r.system.pue = 1.08;
    r.system.itKwh = 43.4999999999999964;
    r.system.coolingKwh = 1e-17;
    r.system.humidityViolationFrac = 2.0 / 7.0;
    r.system.rateViolationFrac = 1e300;
    r.system.avgMaxInletC = 30.000000000000004;
    r.system.days = 365;
    r.outside = r.system;
    r.outside.pue = 0.0;
    r.outside.days = 364;
    return r;
}

} // anonymous namespace

TEST(SpecIo, ResultRoundTripIsExact)
{
    sim::ExperimentResult r = awkwardResult();
    std::string text = sim::formatResult(r);
    sim::ExperimentResult parsed = sim::parseResult(text);
    EXPECT_EQ(r, parsed);
    // Formatting is deterministic, so format(parse(.)) is stable too.
    EXPECT_EQ(text, sim::formatResult(parsed));
}

TEST(SpecIo, ParseResultIsStrict)
{
    const std::string text = sim::formatResult(awkwardResult());
    EXPECT_NO_THROW(sim::parseResult(text));

    EXPECT_THROW(sim::parseResult(""), std::invalid_argument);
    EXPECT_THROW(sim::parseResult("result = 999\n"), std::invalid_argument);
    // A truncated payload is missing fields, not silently zero.
    EXPECT_THROW(sim::parseResult(text.substr(0, text.size() / 2)),
                 std::invalid_argument);
    // Unknown keys are rejected (a format drift must bump the version).
    EXPECT_THROW(sim::parseResult(text + "system.bogus = 1\n"),
                 std::invalid_argument);
    // A payload without the version header is rejected even if complete.
    std::string headerless = text.substr(text.find('\n') + 1);
    EXPECT_THROW(sim::parseResult(headerless), std::invalid_argument);
}

TEST(SpecIo, NamedSiteShortcutIsUsedWhenExact)
{
    sim::ExperimentSpec spec = newarkSpec();
    std::string text = sim::formatSpec(spec);
    EXPECT_NE(std::string::npos, text.find("site = newark"));
    EXPECT_EQ(std::string::npos, text.find("location.name"));

    spec.location.climate.annualMeanC += 1.0;  // no longer exactly Newark
    text = sim::formatSpec(spec);
    EXPECT_EQ(std::string::npos, text.find("site = "));
    EXPECT_NE(std::string::npos, text.find("location.name = Newark"));
    EXPECT_EQ(spec, sim::parseSpec(text));
}

// ---------------------------------------------------------------------------
// Model-sim assembly.
// ---------------------------------------------------------------------------

TEST(ModelSimScenario, BuildsRunnableStack)
{
    sim::ExperimentSpec spec = newarkSpec();
    spec.style = cooling::ActuatorStyle::Abrupt;
    spec.runKind = sim::RunKind::SingleDay;
    spec.day = 182;

    sim::ModelSimScenario ms = sim::buildModelSimScenario(spec);
    ASSERT_TRUE(ms.runner != nullptr);

    std::unique_ptr<plant::Plant> init = sim::makePlant(spec);
    init->initializeSteadyState(
        ms.climate->sample(util::SimTime::fromCalendar(spec.day, 0)), 6.0);
    ms.runner->runDay(spec.day, init->readSensors());
    sim::Summary s = ms.metrics->summary();
    EXPECT_EQ(1, s.days);
    EXPECT_GT(s.itKwh, 0.0);
}
