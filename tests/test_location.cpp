/**
 * @file
 * Tests for named locations and the world grid.
 */

#include <gtest/gtest.h>
#include <cmath>

#include "environment/location.hpp"
#include "environment/world_grid.hpp"
#include "util/stats.hpp"

using namespace coolair::environment;
using coolair::util::SimTime;

TEST(NamedLocations, FiveSitesInPaperOrder)
{
    const auto &sites = allNamedSites();
    ASSERT_EQ(sites.size(), 5u);
    EXPECT_EQ(sites[0], NamedSite::Newark);
    EXPECT_EQ(sites[4], NamedSite::Singapore);
}

TEST(NamedLocations, ClimateCharacters)
{
    // The paper's characterization (§1): Iceland cold year-round, Chad
    // hot year-round, Santiago mild, Singapore hot and humid, Newark hot
    // summers / cold winters.
    Location iceland = namedLocation(NamedSite::Iceland);
    Location chad = namedLocation(NamedSite::Chad);
    Location santiago = namedLocation(NamedSite::Santiago);
    Location singapore = namedLocation(NamedSite::Singapore);
    Location newark = namedLocation(NamedSite::Newark);

    EXPECT_LT(iceland.climate.annualMeanC, 8.0);
    EXPECT_GT(chad.climate.annualMeanC, 25.0);
    EXPECT_GT(singapore.climate.annualMeanC, 25.0);
    EXPECT_NEAR(santiago.climate.annualMeanC, 14.5, 2.0);

    // Singapore is humid (small dew point depression), Chad arid.
    EXPECT_LT(singapore.climate.dewPointDepressionC, 5.0);
    EXPECT_GT(chad.climate.dewPointDepressionC, 10.0);

    // Newark has the largest seasonal swing of the five.
    for (NamedSite s : allNamedSites()) {
        if (s != NamedSite::Newark) {
            EXPECT_GE(newark.climate.seasonalAmplitudeC,
                      namedLocation(s).climate.seasonalAmplitudeC);
        }
    }

    // Santiago is in the southern hemisphere.
    EXPECT_TRUE(santiago.climate.southernHemisphere);
    EXPECT_FALSE(newark.climate.southernHemisphere);
}

TEST(NamedLocations, SiteNamesMatch)
{
    EXPECT_STREQ(siteName(NamedSite::Newark), "Newark");
    EXPECT_STREQ(siteName(NamedSite::Chad), "Chad");
    EXPECT_EQ(namedLocation(NamedSite::Iceland).name, "Iceland");
}

TEST(WorldGrid, CountAndDeterminism)
{
    auto a = worldGrid(100, 42);
    auto b = worldGrid(100, 42);
    ASSERT_EQ(a.size(), 100u);
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].name, b[i].name);
        EXPECT_DOUBLE_EQ(a[i].latitude, b[i].latitude);
        EXPECT_DOUBLE_EQ(a[i].climate.annualMeanC,
                         b[i].climate.annualMeanC);
    }
}

TEST(WorldGrid, DefaultCountMatchesPaper)
{
    auto sites = worldGrid();
    EXPECT_EQ(sites.size(), 1520u);
}

TEST(WorldGrid, LatitudesWithinHabitableBand)
{
    for (const auto &loc : worldGrid(500, 7)) {
        EXPECT_GE(loc.latitude, -55.0);
        EXPECT_LE(loc.latitude, 68.0);
        EXPECT_GE(loc.longitude, -180.0);
        EXPECT_LE(loc.longitude, 180.0);
    }
}

TEST(WorldGrid, ColdSitesAreAtHighLatitudes)
{
    // First-order climatology: annual mean falls with |latitude|.
    coolair::util::RunningStats tropical, polar;
    for (const auto &loc : worldGrid(1000, 3)) {
        if (std::fabs(loc.latitude) < 20.0)
            tropical.add(loc.climate.annualMeanC);
        else if (std::fabs(loc.latitude) > 50.0)
            polar.add(loc.climate.annualMeanC);
    }
    ASSERT_GT(tropical.count(), 10u);
    ASSERT_GT(polar.count(), 10u);
    EXPECT_GT(tropical.mean(), polar.mean() + 10.0);
}

TEST(WorldGrid, SeasonalSwingGrowsWithLatitude)
{
    coolair::util::RunningStats tropical, temperate;
    for (const auto &loc : worldGrid(1000, 3)) {
        if (std::fabs(loc.latitude) < 15.0)
            tropical.add(loc.climate.seasonalAmplitudeC);
        else if (std::fabs(loc.latitude) > 40.0)
            temperate.add(loc.climate.seasonalAmplitudeC);
    }
    EXPECT_GT(temperate.mean(), tropical.mean() + 3.0);
}

TEST(ClimateFor, AridityDrivesDiurnalAndDryness)
{
    ClimateParams wet = climateFor(20.0, 0.5, 0.0);
    ClimateParams dry = climateFor(20.0, 0.5, 1.0);
    EXPECT_GT(dry.diurnalAmplitudeC, wet.diurnalAmplitudeC + 3.0);
    EXPECT_GT(dry.dewPointDepressionC, wet.dewPointDepressionC + 8.0);
}

TEST(ClimateFor, HemisphereFollowsLatitude)
{
    EXPECT_TRUE(climateFor(-30.0, 0.5, 0.5).southernHemisphere);
    EXPECT_FALSE(climateFor(30.0, 0.5, 0.5).southernHemisphere);
}
