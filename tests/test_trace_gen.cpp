/**
 * @file
 * Tests for the workload trace generators against the published trace
 * shapes (§5.1).
 */

#include <gtest/gtest.h>

#include "util/sim_time.hpp"
#include "workload/trace_gen.hpp"

using namespace coolair;
using namespace coolair::workload;

TEST(FacebookTrace, MatchesPublishedShape)
{
    Trace t = facebookTrace({});
    // ~5500 jobs, ~68000 tasks.
    EXPECT_GT(t.jobs.size(), 4500u);
    EXPECT_LT(t.jobs.size(), 6500u);
    EXPECT_GT(t.totalTasks(), 40000);
    EXPECT_LT(t.totalTasks(), 110000);

    for (const auto &j : t.jobs) {
        EXPECT_GE(j.mapTasks, 2);
        EXPECT_LE(j.mapTasks, 1190);
        EXPECT_GE(j.reduceTasks, 1);
        EXPECT_LE(j.reduceTasks, 63);
        EXPECT_GE(j.submitS, 0);
        EXPECT_LT(j.submitS, util::kSecondsPerDay);
        EXPECT_GE(j.inputMb, 64.0);
        EXPECT_LE(j.inputMb, 74.0 * 1024.0);
        EXPECT_FALSE(j.deferrable());
    }
}

TEST(FacebookTrace, OfferedUtilizationNearPaper)
{
    Trace t = facebookTrace({});
    // 27 % average utilization on 128 slots (64 two-slot servers).
    EXPECT_NEAR(t.offeredUtilization(128), 0.27, 0.04);
}

TEST(FacebookTrace, DeterministicAndSeedSensitive)
{
    Trace a = facebookTrace({});
    Trace b = facebookTrace({});
    ASSERT_EQ(a.jobs.size(), b.jobs.size());
    EXPECT_EQ(a.jobs[10].submitS, b.jobs[10].submitS);

    TraceGenConfig other;
    other.seed = 777;
    Trace c = facebookTrace(other);
    EXPECT_NE(a.jobs.size(), c.jobs.size());
}

TEST(FacebookTrace, DiurnalArrivalPattern)
{
    Trace t = facebookTrace({});
    // Evening hours should see clearly more arrivals than early morning.
    int morning = 0, evening = 0;
    for (const auto &j : t.jobs) {
        int hour = int(j.submitS / util::kSecondsPerHour);
        if (hour >= 3 && hour < 7)
            ++morning;
        if (hour >= 17 && hour < 21)
            ++evening;
    }
    EXPECT_GT(evening, morning * 3 / 2);
}

TEST(NutchTrace, MatchesPublishedShape)
{
    Trace t = nutchTrace({});
    // ~2000 jobs, Poisson with 40 s mean inter-arrival.
    EXPECT_GT(t.jobs.size(), 1800u);
    EXPECT_LT(t.jobs.size(), 2400u);
    for (const auto &j : t.jobs) {
        EXPECT_EQ(j.mapTasks, 42);
        EXPECT_EQ(j.reduceTasks, 1);
        EXPECT_GE(j.mapTaskDurS, 15);
        EXPECT_LE(j.mapTaskDurS, 45);
        EXPECT_EQ(j.reduceTaskDurS, 150);
    }
    // ~32 % utilization.
    EXPECT_NEAR(t.offeredUtilization(128), 0.32, 0.06);
}

TEST(SteadyTrace, HitsRequestedUtilization)
{
    Trace t = steadyTrace(0.5, {});
    EXPECT_NEAR(t.offeredUtilization(128), 0.5, 0.05);
    Trace zero = steadyTrace(0.0, {});
    EXPECT_TRUE(zero.jobs.empty());
}

TEST(Trace, MakeDeferrableSetsSixHourDeadlines)
{
    Trace t = nutchTrace({});
    t.makeDeferrable(6.0);
    for (const auto &j : t.jobs) {
        EXPECT_TRUE(j.deferrable());
        EXPECT_EQ(j.startDeadlineS - j.submitS, 6 * util::kSecondsPerHour);
    }
}

TEST(Job, WorkAccounting)
{
    Job j;
    j.mapTasks = 10;
    j.mapTaskDurS = 30;
    j.reduceTasks = 2;
    j.reduceTaskDurS = 60;
    EXPECT_EQ(j.totalWorkS(), 10 * 30 + 2 * 60);
}
