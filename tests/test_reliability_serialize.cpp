/**
 * @file
 * Tests for the disk-reliability impact model and learned-bundle
 * serialization.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "model/serialize.hpp"
#include "reliability/disk_reliability.hpp"
#include "core/coolair.hpp"
#include "sim/experiment.hpp"

using namespace coolair;
using namespace coolair::reliability;

// ---------------------------------------------------------------------------
// Disk reliability
// ---------------------------------------------------------------------------

TEST(DiskReliability, UnityAtReferencePoint)
{
    DiskReliabilityModel m;
    EXPECT_NEAR(m.temperatureFactor(35.0), 1.0, 1e-9);
    EXPECT_NEAR(m.variationFactor(4.0), 1.0, 1e-9);
    ReliabilityReport r = m.assess(35.0, 4.0, 0.0);
    EXPECT_NEAR(r.afrMultiplier, 1.0, 1e-9);
    EXPECT_TRUE(r.cyclesWithinBudget);
}

TEST(DiskReliability, ArrheniusDoublesRoughlyPerTenC)
{
    // With Ea = 0.46 eV near 35 C, +10 C multiplies the rate by ~1.7x.
    DiskReliabilityModel m;
    double f45 = m.temperatureFactor(45.0);
    EXPECT_GT(f45, 1.5);
    EXPECT_LT(f45, 2.2);
    // Monotone increasing.
    double prev = m.temperatureFactor(20.0);
    for (double t = 25.0; t <= 55.0; t += 5.0) {
        double f = m.temperatureFactor(t);
        EXPECT_GT(f, prev);
        prev = f;
    }
}

TEST(DiskReliability, VariationFactorLinearAboveReference)
{
    DiskReliabilityModel m;
    EXPECT_NEAR(m.variationFactor(2.0), 1.0, 1e-9);  // floored
    EXPECT_NEAR(m.variationFactor(14.0), 1.0 + 0.08 * 10.0, 1e-9);
}

TEST(DiskReliability, BlendWeightsHypotheses)
{
    DiskReliabilityConfig sankar;
    sankar.variationWeight = 0.0;   // temperature only
    DiskReliabilityConfig elsayed;
    elsayed.variationWeight = 1.0;  // variation only

    // Hot but steady vs cool but swinging.
    ReliabilityReport hot_steady =
        DiskReliabilityModel(sankar).assess(45.0, 4.0);
    ReliabilityReport hot_steady_v =
        DiskReliabilityModel(elsayed).assess(45.0, 4.0);
    EXPECT_GT(hot_steady.afrMultiplier, 1.4);
    EXPECT_NEAR(hot_steady_v.afrMultiplier, 1.0, 1e-9);

    ReliabilityReport cool_swingy =
        DiskReliabilityModel(elsayed).assess(35.0, 16.0);
    EXPECT_GT(cool_swingy.afrMultiplier, 1.5);
}

TEST(DiskReliability, PowerCycleBudget)
{
    DiskReliabilityModel m;
    // §4.2: 8.5 cycles/hour exhausts the 300k budget over 4 years.
    ReliabilityReport at_limit = m.assess(35.0, 4.0, 8.5);
    EXPECT_NEAR(at_limit.cycleBudgetFractionPerYear * 4.0, 1.0, 0.01);
    ReliabilityReport over = m.assess(35.0, 4.0, 10.0);
    EXPECT_FALSE(over.cyclesWithinBudget);
    ReliabilityReport typical = m.assess(35.0, 4.0, 2.2);
    EXPECT_TRUE(typical.cyclesWithinBudget);
}

TEST(DiskReliability, SummaryOverloadUsesDiskOffset)
{
    DiskReliabilityModel m;
    sim::Summary s;
    s.avgMaxInletC = 24.0;           // disks at ~35 C
    s.avgWorstDailyRangeC = 4.0;
    ReliabilityReport r = m.assess(s);
    EXPECT_NEAR(r.afrMultiplier, 1.0, 0.02);
}

// ---------------------------------------------------------------------------
// Bundle serialization
// ---------------------------------------------------------------------------

TEST(Serialize, RoundTripsSharedBundle)
{
    const model::LearnedBundle &original = sim::sharedBundle();

    std::stringstream buffer;
    ASSERT_TRUE(model::saveBundle(original, buffer));

    model::LearnedBundle loaded = model::loadBundle(buffer);
    EXPECT_EQ(loaded.fittedTempModels, original.fittedTempModels);
    EXPECT_EQ(loaded.recircRankAscending, original.recircRankAscending);
    ASSERT_EQ(loaded.recircProbeRiseC.size(),
              original.recircProbeRiseC.size());

    // Predictions must be bit-identical through the round trip.
    model::TempInputs tin;
    tin.insideC = 27.3;
    tin.insidePrevC = 27.1;
    tin.outsideC = 12.0;
    tin.outsidePrevC = 12.2;
    tin.fanSpeed = 0.4;
    tin.fanSpeedPrev = 0.4;
    tin.dcUtilization = 0.6;
    tin.podPowerFraction = 0.7;
    for (int pod = 0; pod < 8; ++pod) {
        for (auto regime :
             {cooling::Regime::closed(), cooling::Regime::freeCooling(0.4),
              cooling::Regime::acCompressor(1.0)}) {
            double a = original.model.predictTemp(regime, regime, pod, tin);
            double b = loaded.model.predictTemp(regime, regime, pod, tin);
            EXPECT_DOUBLE_EQ(a, b);
        }
    }

    model::HumidityInputs hin;
    hin.insideAbs = 9.0;
    hin.outsideAbs = 6.0;
    hin.fanSpeed = 0.4;
    EXPECT_DOUBLE_EQ(
        original.model.predictHumidity(cooling::Regime::freeCooling(0.4),
                                       cooling::Regime::freeCooling(0.4),
                                       hin),
        loaded.model.predictHumidity(cooling::Regime::freeCooling(0.4),
                                     cooling::Regime::freeCooling(0.4),
                                     hin));

    EXPECT_DOUBLE_EQ(
        original.model.predictCoolingPower(cooling::Regime::acFanOnly()),
        loaded.model.predictCoolingPower(cooling::Regime::acFanOnly()));
}

TEST(Serialize, LoadedBundleDrivesCoolAir)
{
    std::stringstream buffer;
    model::saveBundle(sim::sharedBundle(), buffer);
    model::LearnedBundle loaded = model::loadBundle(buffer);

    environment::Climate climate =
        environment::namedLocation(environment::NamedSite::Newark)
            .makeClimate(3);
    environment::Forecaster forecaster(climate);
    core::CoolAirConfig cfg = core::CoolAirConfig::forVersion(
        core::Version::AllNd, cooling::RegimeMenu::smooth());
    core::CoolAir coolair(cfg, loaded, &forecaster);

    plant::SensorReadings s;
    s.podInletC.assign(8, 27.0);
    s.outsideC = 15.0;
    s.outsideAbsHumidity = 6.0;
    workload::WorkloadStatus status;
    status.demandServers = 20;
    auto d = coolair.control(s, status,
                             plant::PodLoad::uniform(8, 8, 0.5),
                             util::SimTime::fromCalendar(120, 9));
    EXPECT_TRUE(d.plan.manageServerStates);
}

TEST(Serialize, RejectsGarbage)
{
    std::istringstream bad("not a bundle\n");
    EXPECT_DEATH(model::loadBundle(bad), "magic");

    std::istringstream truncated("coolair-model v2\npods 8 step 120 "
                                 "evap-eff 0.75\ntemp 0 0 1 2\n");
    EXPECT_DEATH(model::loadBundle(truncated), "truncated");
}
