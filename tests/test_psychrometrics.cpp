/**
 * @file
 * Unit and property tests for the psychrometric functions.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "physics/psychrometrics.hpp"

using namespace coolair::physics;

TEST(Psychrometrics, SaturationPressureKnownPoints)
{
    // Magnus approximation against reference values (±2 %).
    EXPECT_NEAR(saturationVaporPressure(0.0), 611.0, 15.0);
    EXPECT_NEAR(saturationVaporPressure(20.0), 2339.0, 50.0);
    EXPECT_NEAR(saturationVaporPressure(30.0), 4246.0, 90.0);
    EXPECT_NEAR(saturationVaporPressure(40.0), 7384.0, 160.0);
}

TEST(Psychrometrics, SaturationPressureMonotone)
{
    double prev = saturationVaporPressure(-30.0);
    for (double t = -29.0; t <= 60.0; t += 1.0) {
        double p = saturationVaporPressure(t);
        EXPECT_GT(p, prev);
        prev = p;
    }
}

TEST(Psychrometrics, AbsoluteHumidityKnownPoint)
{
    // Air at 20 C and 100 % RH holds ~17.3 g/m^3 of water.
    EXPECT_NEAR(absoluteHumidity(20.0, 100.0), 17.3, 0.6);
    // Half RH, half content.
    EXPECT_NEAR(absoluteHumidity(20.0, 50.0),
                absoluteHumidity(20.0, 100.0) / 2.0, 1e-9);
}

TEST(Psychrometrics, RelativeAbsoluteRoundTrip)
{
    for (double t = -10.0; t <= 45.0; t += 5.0) {
        for (double rh = 10.0; rh <= 100.0; rh += 15.0) {
            double abs = absoluteHumidity(t, rh);
            EXPECT_NEAR(relativeHumidity(t, abs), rh, 1e-9)
                << "t=" << t << " rh=" << rh;
        }
    }
}

TEST(Psychrometrics, DewPointProperties)
{
    // At 100 % RH the dew point equals the temperature.
    EXPECT_NEAR(dewPoint(25.0, 100.0), 25.0, 0.01);
    // Dew point is below temperature for RH < 100 and increases with RH.
    double prev = dewPoint(25.0, 20.0);
    for (double rh = 30.0; rh < 100.0; rh += 10.0) {
        double dp = dewPoint(25.0, rh);
        EXPECT_LT(dp, 25.0);
        EXPECT_GT(dp, prev);
        prev = dp;
    }
    // Reference: 25 C at 50 % RH -> dew point ~13.9 C.
    EXPECT_NEAR(dewPoint(25.0, 50.0), 13.9, 0.4);
}

TEST(AirState, FromRelativeRoundTrips)
{
    AirState s = AirState::fromRelative(22.0, 65.0);
    EXPECT_NEAR(s.relHumidity(), 65.0, 1e-9);
    EXPECT_DOUBLE_EQ(s.tempC, 22.0);
}

TEST(AirState, MixEndpointsAndMidpoint)
{
    AirState a = AirState::fromRelative(10.0, 80.0);
    AirState b = AirState::fromRelative(30.0, 40.0);

    AirState all_a = mix(a, b, 1.0);
    EXPECT_DOUBLE_EQ(all_a.tempC, a.tempC);
    EXPECT_DOUBLE_EQ(all_a.absHumidity, a.absHumidity);

    AirState all_b = mix(a, b, 0.0);
    EXPECT_DOUBLE_EQ(all_b.tempC, b.tempC);

    AirState half = mix(a, b, 0.5);
    EXPECT_DOUBLE_EQ(half.tempC, 20.0);
    EXPECT_DOUBLE_EQ(half.absHumidity,
                     0.5 * (a.absHumidity + b.absHumidity));
}

TEST(AirState, MixClampsFraction)
{
    AirState a = AirState::fromRelative(10.0, 50.0);
    AirState b = AirState::fromRelative(30.0, 50.0);
    EXPECT_DOUBLE_EQ(mix(a, b, 2.0).tempC, a.tempC);
    EXPECT_DOUBLE_EQ(mix(a, b, -1.0).tempC, b.tempC);
}

TEST(HeatAirMass, KnownHeating)
{
    // 1 m^3 of air has heat capacity rho*cp = 1206 J/K; adding 1206 J
    // raises it 1 K.
    double t = heatAirMass(20.0, 1.0, kAirDensity * kAirSpecificHeat);
    EXPECT_NEAR(t, 21.0, 1e-9);
    // Cooling works symmetrically.
    double t2 = heatAirMass(20.0, 2.0, -2.0 * kAirDensity * kAirSpecificHeat);
    EXPECT_NEAR(t2, 19.0, 1e-9);
}

/** Property sweep: mixing preserves bounds (no over/undershoot). */
class MixProperty
    : public ::testing::TestWithParam<std::tuple<double, double, double>>
{
};

TEST_P(MixProperty, MixWithinEndpoints)
{
    auto [ta, tb, frac] = GetParam();
    AirState a = AirState::fromRelative(ta, 70.0);
    AirState b = AirState::fromRelative(tb, 30.0);
    AirState m = mix(a, b, frac);
    EXPECT_GE(m.tempC, std::min(ta, tb) - 1e-12);
    EXPECT_LE(m.tempC, std::max(ta, tb) + 1e-12);
    EXPECT_GE(m.absHumidity, std::min(a.absHumidity, b.absHumidity) - 1e-12);
    EXPECT_LE(m.absHumidity, std::max(a.absHumidity, b.absHumidity) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MixProperty,
    ::testing::Combine(::testing::Values(-5.0, 10.0, 35.0),
                       ::testing::Values(0.0, 22.0, 45.0),
                       ::testing::Values(0.0, 0.25, 0.5, 0.9, 1.0)));
