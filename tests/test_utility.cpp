/**
 * @file
 * Tests for the utility (penalty) function of §3.2.
 */

#include <gtest/gtest.h>

#include "core/utility.hpp"

using namespace coolair;
using namespace coolair::core;
using cooling::Regime;

namespace {

PredictedStep
step(std::vector<double> temps, double rh = 50.0)
{
    PredictedStep s;
    s.podTempC = std::move(temps);
    s.rhPercent = rh;
    s.stepHours = 2.0 / 60.0;
    return s;
}

UtilityConfig
onlyMaxTemp()
{
    UtilityConfig c;
    c.penalizeBand = false;
    c.penalizeRate = false;
    c.penalizeHumidity = false;
    c.penalizeAcFull = false;
    c.energyAware = false;
    return c;
}

const TemperatureBand kBand = TemperatureBand::fixed(25.0, 30.0);

} // anonymous namespace

TEST(Utility, MaxTempPenaltyPerHalfDegree)
{
    UtilityConfig cfg = onlyMaxTemp();  // max 30
    std::vector<PredictedStep> traj{step({31.0, 29.0})};
    std::vector<double> init{30.0, 29.0};
    // Pod 0 is 1.0 C over: 2 units.  Pod 1 within limits: 0.
    double p = trajectoryPenalty(traj, init, {0, 1}, kBand,
                                 Regime::closed(), cfg);
    EXPECT_NEAR(p, 2.0, 1e-9);
}

TEST(Utility, BandPenaltyBothSides)
{
    UtilityConfig cfg = onlyMaxTemp();
    cfg.penalizeMaxTemp = false;
    cfg.penalizeBand = true;
    std::vector<PredictedStep> traj{step({24.0, 31.0})};
    std::vector<double> init{25.0, 30.0};
    // 1 C below band: 2 units; 1 C above: 2 units.
    double p = trajectoryPenalty(traj, init, {0, 1}, kBand,
                                 Regime::closed(), cfg);
    EXPECT_NEAR(p, 4.0, 1e-9);
}

TEST(Utility, OnlyActivePodsCharged)
{
    UtilityConfig cfg = onlyMaxTemp();
    cfg.penalizeMaxTemp = false;
    cfg.penalizeBand = true;
    std::vector<PredictedStep> traj{step({24.0, 31.0})};
    std::vector<double> init{25.0, 30.0};
    double p = trajectoryPenalty(traj, init, {0}, kBand, Regime::closed(),
                                 cfg);
    EXPECT_NEAR(p, 2.0, 1e-9);  // pod 1 inactive, not charged
}

TEST(Utility, RatePenaltyProRatedByDuration)
{
    UtilityConfig cfg = onlyMaxTemp();
    cfg.penalizeMaxTemp = false;
    cfg.penalizeRate = true;
    // 2 C drop in 2 minutes = 60 C/h; excess 40 C/h over 1/30 h
    // charges 40/30 units.
    std::vector<PredictedStep> traj{step({26.0})};
    std::vector<double> init{28.0};
    double p = trajectoryPenalty(traj, init, {0}, kBand, Regime::closed(),
                                 cfg);
    EXPECT_NEAR(p, 40.0 / 30.0, 1e-9);
}

TEST(Utility, RateWithinLimitFree)
{
    UtilityConfig cfg = onlyMaxTemp();
    cfg.penalizeMaxTemp = false;
    cfg.penalizeRate = true;
    // 0.5 C in 2 min = 15 C/h: within the 20 C/h limit.
    std::vector<PredictedStep> traj{step({27.5})};
    std::vector<double> init{28.0};
    EXPECT_DOUBLE_EQ(trajectoryPenalty(traj, init, {0}, kBand,
                                       Regime::closed(), cfg),
                     0.0);
}

TEST(Utility, HumidityPenaltyPerFivePercent)
{
    UtilityConfig cfg = onlyMaxTemp();
    cfg.penalizeMaxTemp = false;
    cfg.penalizeHumidity = true;  // ceiling 80 %
    std::vector<PredictedStep> traj{step({27.0}, 90.0)};
    std::vector<double> init{27.0};
    double p = trajectoryPenalty(traj, init, {0}, kBand, Regime::closed(),
                                 cfg);
    EXPECT_NEAR(p, 2.0, 1e-9);  // 10 % over / 5
}

TEST(Utility, AcFullPenaltyPerStep)
{
    UtilityConfig cfg = onlyMaxTemp();
    cfg.penalizeMaxTemp = false;
    cfg.penalizeAcFull = true;
    std::vector<PredictedStep> traj{step({27.0}), step({27.0}),
                                    step({27.0})};
    std::vector<double> init{27.0};
    EXPECT_NEAR(trajectoryPenalty(traj, init, {0}, kBand,
                                  Regime::acCompressor(1.0), cfg),
                3.0, 1e-9);
    // Partial compressor speed is not "full blast".
    EXPECT_DOUBLE_EQ(trajectoryPenalty(traj, init, {0}, kBand,
                                       Regime::acCompressor(0.5), cfg),
                     0.0);
    EXPECT_DOUBLE_EQ(trajectoryPenalty(traj, init, {0}, kBand,
                                       Regime::acFanOnly(), cfg),
                     0.0);
}

TEST(Utility, ViolationsAccumulateAcrossStepsAndPods)
{
    UtilityConfig cfg = onlyMaxTemp();
    std::vector<PredictedStep> traj{step({31.0, 31.0}),
                                    step({31.0, 31.0})};
    std::vector<double> init{31.0, 31.0};
    // 2 pods x 2 steps x (1.0 / 0.5) = 8 units.
    EXPECT_NEAR(trajectoryPenalty(traj, init, {0, 1}, kBand,
                                  Regime::closed(), cfg),
                8.0, 1e-9);
}

TEST(Utility, CenteringTermOptIn)
{
    UtilityConfig cfg = onlyMaxTemp();
    cfg.penalizeMaxTemp = false;
    cfg.penalizeBand = true;
    cfg.centeringWeightPerC = 0.1;
    // In-band but off-center trajectory costs the centering term only.
    std::vector<PredictedStep> traj{step({29.0})};
    std::vector<double> init{29.0};
    double p = trajectoryPenalty(traj, init, {0}, kBand, Regime::closed(),
                                 cfg);
    EXPECT_NEAR(p, 0.1 * (29.0 - 27.5), 1e-9);
}
