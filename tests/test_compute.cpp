/**
 * @file
 * Tests for the Compute Optimizer: placement order, awake-server
 * targeting with decay, and temporal-scheduling hour masks.
 */

#include <gtest/gtest.h>

#include "core/compute.hpp"

using namespace coolair;
using namespace coolair::core;
using environment::Forecast;
using util::SimTime;

namespace {

const std::vector<int> kRankAsc = {2, 0, 1, 3};  // by rising recirc

Forecast
rampForecast()
{
    // Cold at night, warm midday: hours 0-5 at 5 C, 6-17 at 15 C,
    // 18-23 at 8 C.
    Forecast fc;
    for (int h = 0; h < 24; ++h) {
        double t = h < 6 ? 5.0 : (h < 18 ? 15.0 : 8.0);
        fc.hours.push_back({SimTime::fromCalendar(0, h), t});
    }
    return fc;
}

workload::WorkloadStatus
demand(int servers)
{
    workload::WorkloadStatus st;
    st.demandServers = servers;
    return st;
}

ComputeConfig
baseConfig()
{
    ComputeConfig cfg;
    cfg.totalServers = 64;
    cfg.coveringSubsetSize = 8;
    return cfg;
}

} // anonymous namespace

TEST(ComputeOptimizer, PlacementOrders)
{
    ComputeConfig cfg = baseConfig();
    cfg.placement = Placement::LowRecircFirst;
    ComputeOptimizer low(cfg, kRankAsc);
    EXPECT_EQ(low.podOrder(), kRankAsc);

    cfg.placement = Placement::HighRecircFirst;
    ComputeOptimizer high(cfg, kRankAsc);
    std::vector<int> reversed = {3, 1, 0, 2};
    EXPECT_EQ(high.podOrder(), reversed);
}

TEST(ComputeOptimizer, TargetTracksDemandWithHeadroom)
{
    ComputeConfig cfg = baseConfig();
    cfg.headroomFraction = 0.25;
    ComputeOptimizer opt(cfg, kRankAsc);
    TemperatureBand band = TemperatureBand::fixed(25.0, 30.0);

    auto plan = opt.plan(demand(20), band, Forecast{}, BandConfig{});
    EXPECT_TRUE(plan.manageServerStates);
    EXPECT_EQ(plan.targetActiveServers, 25);  // ceil(20 * 1.25)
}

TEST(ComputeOptimizer, TargetClampedToCoveringAndTotal)
{
    ComputeConfig cfg = baseConfig();
    ComputeOptimizer opt(cfg, kRankAsc);
    TemperatureBand band = TemperatureBand::fixed(25.0, 30.0);

    auto low = opt.plan(demand(0), band, Forecast{}, BandConfig{});
    EXPECT_EQ(low.targetActiveServers, 8);

    ComputeOptimizer opt2(cfg, kRankAsc);
    auto high = opt2.plan(demand(200), band, Forecast{}, BandConfig{});
    EXPECT_EQ(high.targetActiveServers, 64);
}

TEST(ComputeOptimizer, SleepsGraduallyWakesInstantly)
{
    ComputeConfig cfg = baseConfig();
    cfg.headroomFraction = 0.0;
    cfg.sleepDecayPerEpoch = 0.5;
    ComputeOptimizer opt(cfg, kRankAsc);
    TemperatureBand band = TemperatureBand::fixed(25.0, 30.0);

    auto p1 = opt.plan(demand(40), band, Forecast{}, BandConfig{});
    EXPECT_EQ(p1.targetActiveServers, 40);

    // Demand collapses: the target halves per epoch rather than snapping.
    auto p2 = opt.plan(demand(8), band, Forecast{}, BandConfig{});
    EXPECT_EQ(p2.targetActiveServers, 20);
    auto p3 = opt.plan(demand(8), band, Forecast{}, BandConfig{});
    EXPECT_EQ(p3.targetActiveServers, 10);

    // Demand spikes: instant wake.
    auto p4 = opt.plan(demand(60), band, Forecast{}, BandConfig{});
    EXPECT_EQ(p4.targetActiveServers, 60);
}

TEST(ComputeOptimizer, UnmanagedKeepsAllServers)
{
    ComputeConfig cfg = baseConfig();
    cfg.manageServerStates = false;
    ComputeOptimizer opt(cfg, kRankAsc);
    auto plan = opt.plan(demand(5), TemperatureBand::fixed(25.0, 30.0),
                         Forecast{}, BandConfig{});
    EXPECT_FALSE(plan.manageServerStates);
    EXPECT_EQ(plan.targetActiveServers, 64);
}

TEST(ComputeOptimizer, BandHoursMaskSelectsOverlapHours)
{
    ComputeConfig cfg = baseConfig();
    cfg.temporal = TemporalPolicy::BandHours;
    ComputeOptimizer opt(cfg, kRankAsc);

    // Band in outside coordinates: [lo - offset, hi - offset].
    BandConfig bc;  // offset 8
    Forecast fc = rampForecast();
    // Pick a band overlapping the 15 C hours only: inside [21, 26] ->
    // outside [13, 18].
    TemperatureBand band = TemperatureBand::fixed(21.0, 26.0);
    auto plan = opt.plan(demand(10), band, fc, bc);

    for (int h = 0; h < 24; ++h) {
        bool expected = h >= 6 && h < 18;
        EXPECT_EQ(plan.hourAllowed[size_t(h)], expected) << "hour " << h;
    }
}

TEST(ComputeOptimizer, BandHoursAllowsEverythingOnFutileDays)
{
    ComputeConfig cfg = baseConfig();
    cfg.temporal = TemporalPolicy::BandHours;
    ComputeOptimizer opt(cfg, kRankAsc);

    BandConfig bc;
    Forecast fc = rampForecast();
    TemperatureBand band = TemperatureBand::fixed(21.0, 26.0);
    band.slidToMax = true;  // the §3.3 skip rule
    auto plan = opt.plan(demand(10), band, fc, bc);
    for (int h = 0; h < 24; ++h)
        EXPECT_TRUE(plan.hourAllowed[size_t(h)]);
}

TEST(ComputeOptimizer, ColdHoursMaskPrefersColdHalf)
{
    ComputeConfig cfg = baseConfig();
    cfg.temporal = TemporalPolicy::ColdHours;
    ComputeOptimizer opt(cfg, kRankAsc);

    auto plan = opt.plan(demand(10), TemperatureBand::fixed(21.0, 26.0),
                         rampForecast(), BandConfig{});
    // Mean is ~11.75: the 5 C and 8 C hours are allowed, 15 C hours not.
    EXPECT_TRUE(plan.hourAllowed[2]);
    EXPECT_TRUE(plan.hourAllowed[20]);
    EXPECT_FALSE(plan.hourAllowed[12]);
}

TEST(ComputeOptimizer, NoTemporalPolicyAllowsAllHours)
{
    ComputeConfig cfg = baseConfig();
    ComputeOptimizer opt(cfg, kRankAsc);
    auto plan = opt.plan(demand(10), TemperatureBand::fixed(21.0, 26.0),
                         rampForecast(), BandConfig{});
    for (int h = 0; h < 24; ++h)
        EXPECT_TRUE(plan.hourAllowed[size_t(h)]);
}
