/**
 * @file
 * Unit tests for the text-table and CSV emitters.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hpp"

using namespace coolair::util;

TEST(TextTable, RendersAlignedMarkdown)
{
    TextTable t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    std::ostringstream os;
    t.print(os);
    std::string out = os.str();
    EXPECT_NE(out.find("| name  | value |"), std::string::npos);
    EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
    EXPECT_NE(out.find("|-------|"), std::string::npos);
}

TEST(TextTable, FmtPrecision)
{
    EXPECT_EQ(TextTable::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::fmt(3.14159, 0), "3");
    EXPECT_EQ(TextTable::fmt(-1.5, 1), "-1.5");
}

TEST(TextTable, ArityMismatchPanics)
{
    TextTable t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "arity");
}

TEST(CsvWriter, HeaderAndRows)
{
    std::ostringstream os;
    CsvWriter csv(os, {"t", "x"});
    csv.writeRow(std::vector<double>{1.0, 2.5});
    csv.writeRow(std::vector<std::string>{"2", "hello"});
    EXPECT_EQ(os.str(), "t,x\n1,2.5\n2,hello\n");
}

TEST(CsvWriter, ArityMismatchPanics)
{
    std::ostringstream os;
    CsvWriter csv(os, {"a", "b", "c"});
    EXPECT_DEATH(csv.writeRow(std::vector<double>{1.0}), "arity");
}
