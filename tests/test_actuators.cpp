/**
 * @file
 * Tests for the actuator dynamics (abrupt vs smooth) and power models.
 */

#include <gtest/gtest.h>

#include "cooling/actuators.hpp"

using namespace coolair::cooling;

namespace {

ActuatorConfig
abruptConfig()
{
    ActuatorConfig c;
    c.style = ActuatorStyle::Abrupt;
    return c;
}

ActuatorConfig
smoothConfig()
{
    ActuatorConfig c;
    c.style = ActuatorStyle::Smooth;
    return c;
}

} // anonymous namespace

TEST(PowerModel, FreeCoolingCubicEndpoints)
{
    PowerModel pm;
    EXPECT_DOUBLE_EQ(pm.freeCoolingPower(0.0), 0.0);
    // Paper §4.1: the FC unit draws between 8 W and 425 W.
    EXPECT_NEAR(pm.freeCoolingPower(0.001), 8.0, 0.1);
    EXPECT_NEAR(pm.freeCoolingPower(1.0), 425.0, 0.1);
    // Cubic: half speed draws far less than half the span.
    EXPECT_LT(pm.freeCoolingPower(0.5), 8.0 + 417.0 / 4.0);
}

TEST(PowerModel, AcEndpointsMatchParasol)
{
    PowerModel pm;
    // Paper §4.1: 135 W fan-only, 2.2 kW with the compressor.
    EXPECT_NEAR(pm.acPower(1.0, 0.0), 550.0, 1.0);   // smooth fan at 100 %
    EXPECT_NEAR(pm.acPower(0.2, 0.0), 135.0, 1.0);   // floor = fan-only
    EXPECT_NEAR(pm.acPower(1.0, 1.0), 2200.0, 1.0);
    EXPECT_DOUBLE_EQ(pm.acPower(0.0, 0.0), 0.0);
    // Compressor linear in speed (§5.1).
    double quarter = pm.acPower(1.0, 0.25) - pm.acPower(1.0, 0.0);
    double full = pm.acPower(1.0, 1.0) - pm.acPower(1.0, 0.0);
    EXPECT_NEAR(quarter, full / 4.0, 1.0);
}

TEST(AbruptActuators, SnapToCommand)
{
    Actuators act(abruptConfig());
    act.setCommand(Regime::freeCooling(0.5));
    act.step(1.0);
    EXPECT_EQ(act.state().mode, Mode::FreeCooling);
    EXPECT_DOUBLE_EQ(act.state().fcFanSpeed, 0.5);
    EXPECT_TRUE(act.state().damperOpen);

    act.setCommand(Regime::acCompressor(1.0));
    act.step(1.0);
    EXPECT_EQ(act.state().mode, Mode::AirConditioning);
    EXPECT_DOUBLE_EQ(act.state().fcFanSpeed, 0.0);
    EXPECT_DOUBLE_EQ(act.state().compressorSpeed, 1.0);
    EXPECT_FALSE(act.state().damperOpen);
}

TEST(AbruptActuators, MinimumFanSpeedEnforced)
{
    // The Dantherm unit's minimum runnable speed is 15 %: asking for
    // 5 % jumps to 15 % — the source of Parasol's abrupt transitions.
    Actuators act(abruptConfig());
    act.setCommand(Regime::freeCooling(0.05));
    act.step(1.0);
    EXPECT_DOUBLE_EQ(act.state().fcFanSpeed, 0.15);
}

TEST(AbruptActuators, FixedSpeedCompressor)
{
    Actuators act(abruptConfig());
    act.setCommand(Regime::acCompressor(0.3));  // fixed-speed unit
    act.step(1.0);
    EXPECT_DOUBLE_EQ(act.state().compressorSpeed, 1.0);
}

TEST(SmoothActuators, RampUpFromOnePercent)
{
    Actuators act(smoothConfig());
    act.setCommand(Regime::freeCooling(0.5));
    act.step(1.0);
    // Starts at the 1 % minimum, then ramps at 0.002/s.
    EXPECT_NEAR(act.state().fcFanSpeed, 0.012, 1e-6);
    act.step(10.0);
    EXPECT_NEAR(act.state().fcFanSpeed, 0.032, 1e-6);
    // Eventually reaches the target and holds it.
    for (int i = 0; i < 300; ++i)
        act.step(1.0);
    EXPECT_NEAR(act.state().fcFanSpeed, 0.5, 1e-9);
}

TEST(SmoothActuators, RampDownSnapsFromFifteenPercent)
{
    Actuators act(smoothConfig());
    act.setCommand(Regime::freeCooling(0.3));
    for (int i = 0; i < 200; ++i)
        act.step(1.0);
    ASSERT_NEAR(act.state().fcFanSpeed, 0.3, 1e-9);

    // §5.1: ramp down goes from 15 % directly to off.
    act.setCommand(Regime::closed());
    bool saw_fifteen = false;
    for (int i = 0; i < 200; ++i) {
        act.step(1.0);
        double s = act.state().fcFanSpeed;
        if (s > 0.0) {
            EXPECT_GE(s, 0.15 - 1e-9);
        }
        if (std::abs(s - 0.15) < 1e-9)
            saw_fifteen = true;
    }
    EXPECT_TRUE(saw_fifteen);
    EXPECT_DOUBLE_EQ(act.state().fcFanSpeed, 0.0);
    EXPECT_EQ(act.state().mode, Mode::Closed);
}

TEST(SmoothActuators, VariableCompressor)
{
    Actuators act(smoothConfig());
    act.setCommand(Regime::acCompressor(0.5));
    for (int i = 0; i < 600; ++i)
        act.step(1.0);
    EXPECT_NEAR(act.state().compressorSpeed, 0.5, 1e-9);
    EXPECT_NEAR(act.state().acFanSpeed, 1.0, 1e-9);
    EXPECT_EQ(act.state().mode, Mode::AirConditioning);
}

TEST(SmoothActuators, ModeFollowsPhysicalState)
{
    Actuators act(smoothConfig());
    act.setCommand(Regime::freeCooling(1.0));
    act.step(1.0);
    EXPECT_EQ(act.state().mode, Mode::FreeCooling);

    // Commanding AC while the FC fan still spins down: mode reflects
    // whichever unit is physically moving air.
    act.setCommand(Regime::acFanOnly());
    act.step(1.0);
    EXPECT_TRUE(act.state().mode == Mode::FreeCooling ||
                act.state().mode == Mode::AirConditioning);
    for (int i = 0; i < 800; ++i)
        act.step(1.0);
    EXPECT_EQ(act.state().mode, Mode::AirConditioning);
    EXPECT_DOUBLE_EQ(act.state().fcFanSpeed, 0.0);
}

TEST(Actuators, CoolingPowerTracksState)
{
    Actuators act(abruptConfig());
    EXPECT_DOUBLE_EQ(act.coolingPowerW(), 0.0);
    act.setCommand(Regime::freeCooling(1.0));
    act.step(1.0);
    EXPECT_NEAR(act.coolingPowerW(), 425.0, 0.5);
    act.setCommand(Regime::acCompressor(1.0));
    act.step(1.0);
    EXPECT_NEAR(act.coolingPowerW(), 2200.0, 1.0);
}
