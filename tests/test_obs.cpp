/**
 * @file
 * Observability-layer tests: registry naming and dump determinism,
 * histogram edge cases, merge semantics, concurrent accumulation (the
 * TSan target), trace-event JSON well-formedness, RunReport round-trip,
 * and the locked acceptance property — stats and report output are
 * byte-identical across worker-pool thread counts.
 */

#include <gtest/gtest.h>

#include <cctype>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "environment/world_grid.hpp"
#include "obs/report.hpp"
#include "obs/stats.hpp"
#include "obs/trace.hpp"
#include "sim/runner.hpp"
#include "sim/scenario.hpp"
#include "sim/spec_io.hpp"

using namespace coolair;

namespace {

/**
 * Minimal recursive-descent JSON well-formedness checker for the subset
 * the obs writers emit (objects, arrays, strings, numbers, bools).
 * Throws std::runtime_error on malformed input.
 */
class JsonChecker
{
  public:
    explicit JsonChecker(const std::string &text) : _s(text) {}

    void check()
    {
        skipWs();
        value();
        skipWs();
        if (_i != _s.size())
            fail("trailing characters");
    }

  private:
    void value()
    {
        if (_i >= _s.size())
            fail("unexpected end");
        char c = _s[_i];
        if (c == '{')
            object();
        else if (c == '[')
            array();
        else if (c == '"')
            string();
        else if (c == '-' || std::isdigit(uint8_t(c)))
            number();
        else if (_s.compare(_i, 4, "true") == 0)
            _i += 4;
        else if (_s.compare(_i, 5, "false") == 0)
            _i += 5;
        else
            fail("unexpected token");
    }

    void object()
    {
        expect('{');
        skipWs();
        if (peek() == '}') {
            ++_i;
            return;
        }
        while (true) {
            skipWs();
            string();
            skipWs();
            expect(':');
            skipWs();
            value();
            skipWs();
            if (peek() == ',') {
                ++_i;
                continue;
            }
            expect('}');
            return;
        }
    }

    void array()
    {
        expect('[');
        skipWs();
        if (peek() == ']') {
            ++_i;
            return;
        }
        while (true) {
            skipWs();
            value();
            skipWs();
            if (peek() == ',') {
                ++_i;
                continue;
            }
            expect(']');
            return;
        }
    }

    void string()
    {
        expect('"');
        while (true) {
            if (_i >= _s.size())
                fail("unterminated string");
            char c = _s[_i++];
            if (c == '"')
                return;
            if (c == '\\') {
                if (_i >= _s.size())
                    fail("bad escape");
                char e = _s[_i++];
                if (e == 'u') {
                    for (int k = 0; k < 4; ++k, ++_i)
                        if (_i >= _s.size() ||
                            !std::isxdigit(uint8_t(_s[_i])))
                            fail("bad \\u escape");
                } else if (!strchr("\"\\/bfnrt", e)) {
                    fail("bad escape char");
                }
            }
        }
    }

    void number()
    {
        size_t start = _i;
        if (peek() == '-')
            ++_i;
        while (_i < _s.size() &&
               (std::isdigit(uint8_t(_s[_i])) || _s[_i] == '.' ||
                _s[_i] == 'e' || _s[_i] == 'E' || _s[_i] == '+' ||
                _s[_i] == '-'))
            ++_i;
        if (_i == start)
            fail("bad number");
    }

    char peek() const { return _i < _s.size() ? _s[_i] : '\0'; }

    void expect(char c)
    {
        if (peek() != c)
            fail(std::string("expected '") + c + "'");
        ++_i;
    }

    void skipWs()
    {
        while (_i < _s.size() && std::isspace(uint8_t(_s[_i])))
            ++_i;
    }

    [[noreturn]] void fail(const std::string &why) const
    {
        throw std::runtime_error("JSON error at offset " +
                                 std::to_string(_i) + ": " + why);
    }

    const std::string &_s;
    size_t _i = 0;
};

void
expectValidJson(const std::string &text)
{
    try {
        JsonChecker(text).check();
    } catch (const std::runtime_error &e) {
        FAIL() << e.what() << "\nin:\n" << text;
    }
}

/** Decode one JSON string literal's escapes (the subset jsonQuote emits). */
std::string
unescapeJsonString(const std::string &s)
{
    std::string out;
    for (size_t i = 0; i < s.size(); ++i) {
        if (s[i] != '\\') {
            out += s[i];
            continue;
        }
        char e = s[++i];
        switch (e) {
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u':
            out += char(std::stoi(s.substr(i + 1, 4), nullptr, 16));
            i += 4;
            break;
          default: out += e; break;
        }
    }
    return out;
}

/** Extract the raw (escaped) value of a top-level "key": "..." field. */
std::string
extractStringField(const std::string &json, const std::string &key)
{
    std::string marker = "\"" + key + "\": \"";
    size_t start = json.find(marker);
    EXPECT_NE(std::string::npos, start) << "no field " << key;
    start += marker.size();
    size_t end = start;
    while (end < json.size() && json[end] != '"') {
        if (json[end] == '\\')
            ++end;
        ++end;
    }
    return json.substr(start, end - start);
}

/** Global obs state is process-wide; reset it around every test. */
class ObsTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        obs::setEnabled(false);
        obs::registry().clear();
        obs::Tracer::instance().setEnabled(false);
        obs::Tracer::instance().clear();
    }

    void TearDown() override
    {
        obs::setEnabled(false);
        obs::registry().clear();
        obs::Tracer::instance().setEnabled(false);
        obs::Tracer::instance().clear();
    }
};

} // anonymous namespace

// ---------------------------------------------------------------------------
// Registry: names, kinds, dumps.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, RegistrationReturnsStableRefsAndChecksKinds)
{
    obs::StatsRegistry reg;
    obs::Counter &a = reg.counter("engine.steps", "physics steps");
    obs::Counter &b = reg.counter("engine.steps");
    EXPECT_EQ(&a, &b);

    a.add(3);
    b.inc();
    EXPECT_EQ(4, a.value());

    EXPECT_THROW(reg.gauge("engine.steps"), std::invalid_argument);
    EXPECT_THROW(reg.histogram("engine.steps"), std::invalid_argument);
}

TEST_F(ObsTest, DumpTextIsSortedAndSkipsWallClock)
{
    obs::StatsRegistry reg;
    reg.counter("z.last").add(1);
    reg.counter("a.first", "the first").add(2);
    reg.histogram("m.wall", "job timing", obs::kWallClock).record(1.5);

    std::ostringstream os;
    reg.dumpText(os);
    std::string text = os.str();
    EXPECT_NE(std::string::npos, text.find("Begin Simulation Statistics"));
    EXPECT_NE(std::string::npos, text.find("End Simulation Statistics"));
    EXPECT_LT(text.find("a.first"), text.find("z.last"));
    EXPECT_NE(std::string::npos, text.find("# the first"));
    EXPECT_NE(std::string::npos, text.find("m.wall::count"));

    std::ostringstream det;
    obs::DumpOptions opts;
    opts.skipWallClock = true;
    reg.dumpText(det, opts);
    EXPECT_EQ(std::string::npos, det.str().find("m.wall"));
    EXPECT_NE(std::string::npos, det.str().find("a.first"));
}

TEST_F(ObsTest, DumpJsonIsValidJson)
{
    obs::StatsRegistry reg;
    reg.counter("a.count").add(7);
    reg.gauge("b.rate", "quoted \"desc\"\n").set(0.125);
    obs::Histogram &h = reg.histogram("c.hist");
    h.record(2.0, 3.0);
    h.record(4.0);

    std::ostringstream os;
    reg.dumpJson(os);
    expectValidJson(os.str());
    EXPECT_NE(std::string::npos, os.str().find("\"a.count\""));
}

TEST_F(ObsTest, FormatDoubleIsValuePreserving)
{
    EXPECT_EQ("42", obs::formatDouble(42.0));
    EXPECT_EQ("-3", obs::formatDouble(-3.0));
    for (double v : {0.1, 1.0 / 3.0, 1.08e-9, 12345.6789}) {
        double back = std::stod(obs::formatDouble(v));
        EXPECT_EQ(v, back);
    }
}

// ---------------------------------------------------------------------------
// Histogram edge cases.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, EmptyHistogramReportsZeros)
{
    obs::Histogram h;
    obs::Histogram::Snapshot s = h.snapshot();
    EXPECT_EQ(0, s.count);
    EXPECT_EQ(0.0, s.mean());
    EXPECT_EQ(0.0, s.min);
    EXPECT_EQ(0.0, s.max);
}

TEST_F(ObsTest, SingleSampleHistogram)
{
    obs::Histogram h;
    h.record(-2.5);
    obs::Histogram::Snapshot s = h.snapshot();
    EXPECT_EQ(1, s.count);
    EXPECT_EQ(-2.5, s.mean());
    EXPECT_EQ(-2.5, s.min);
    EXPECT_EQ(-2.5, s.max);
}

TEST_F(ObsTest, WeightedHistogramMeanIsTimeWeighted)
{
    obs::Histogram h;
    h.record(10.0, 1.0);
    h.record(20.0, 3.0);
    obs::Histogram::Snapshot s = h.snapshot();
    EXPECT_EQ(2, s.count);
    EXPECT_EQ(17.5, s.mean());  // (10*1 + 20*3) / 4
    EXPECT_EQ(10.0, s.min);
    EXPECT_EQ(20.0, s.max);
}

TEST_F(ObsTest, CombineMatchesDirectRecording)
{
    obs::Histogram a, b, all;
    a.record(1.0, 2.0);
    b.record(5.0);
    all.record(1.0, 2.0);
    all.record(5.0);

    obs::Histogram merged;
    merged.combine(a.snapshot());
    merged.combine(b.snapshot());
    merged.combine(obs::Histogram().snapshot());  // empty is a no-op

    obs::Histogram::Snapshot m = merged.snapshot();
    obs::Histogram::Snapshot d = all.snapshot();
    EXPECT_EQ(d.count, m.count);
    EXPECT_EQ(d.weightSum, m.weightSum);
    EXPECT_EQ(d.weightedSum, m.weightedSum);
    EXPECT_EQ(d.min, m.min);
    EXPECT_EQ(d.max, m.max);
}

// ---------------------------------------------------------------------------
// Merge semantics and determinism.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, MergeAddsCountersAndCombinesHistograms)
{
    obs::StatsRegistry a, b;
    a.counter("jobs").add(2);
    b.counter("jobs").add(3);
    b.counter("only_b").add(1);
    a.gauge("rate").set(1.0);
    b.gauge("rate").set(2.0);
    a.histogram("h").record(1.0);
    b.histogram("h").record(3.0);

    a.merge(b);
    std::vector<obs::StatsRegistry::Entry> entries = a.snapshot();
    ASSERT_EQ(4u, entries.size());
    EXPECT_EQ("h", entries[0].name);
    EXPECT_EQ(2, entries[0].histogram.count);
    EXPECT_EQ(2.0, entries[0].histogram.mean());
    EXPECT_EQ("jobs", entries[1].name);
    EXPECT_EQ(5, entries[1].counterValue);
    EXPECT_EQ("only_b", entries[2].name);
    EXPECT_EQ(1, entries[2].counterValue);
    EXPECT_EQ("rate", entries[3].name);
    EXPECT_EQ(2.0, entries[3].gaugeValue);
}

TEST_F(ObsTest, DumpIsIndependentOfRegistrationOrder)
{
    obs::StatsRegistry fwd, rev;
    const char *names[] = {"a", "b.c", "b", "z"};
    for (const char *n : names)
        fwd.counter(n).add(1);
    for (int i = 3; i >= 0; --i)
        rev.counter(names[i]).add(1);

    std::ostringstream f, r;
    fwd.dumpText(f);
    rev.dumpText(r);
    EXPECT_EQ(f.str(), r.str());
}

TEST_F(ObsTest, ConcurrentAccumulationIsExactAndRaceFree)
{
    // The TSan preset runs this binary: concurrent registration and
    // accumulation on the shared registry must be clean and lose no
    // increments.
    constexpr int kThreads = 8;
    constexpr int kIters = 20000;
    obs::StatsRegistry reg;
    std::vector<std::thread> pool;
    for (int t = 0; t < kThreads; ++t) {
        pool.emplace_back([&reg] {
            obs::Counter &c = reg.counter("shared.count");
            obs::Histogram &h = reg.histogram("shared.hist");
            for (int i = 0; i < kIters; ++i) {
                c.inc();
                if (i % 100 == 0)
                    h.record(double(i % 7), 1.0);
            }
        });
    }
    for (std::thread &t : pool)
        t.join();

    EXPECT_EQ(int64_t(kThreads) * kIters,
              reg.counter("shared.count").value());
    EXPECT_EQ(int64_t(kThreads) * (kIters / 100),
              reg.histogram("shared.hist").snapshot().count);
}

// ---------------------------------------------------------------------------
// Tracer.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, SpansAreFreeWhenDisabled)
{
    {
        obs::Span span("never.recorded");
    }
    EXPECT_EQ(0u, obs::Tracer::instance().eventCount());
}

TEST_F(ObsTest, TraceJsonIsWellFormed)
{
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.setEnabled(true);
    tracer.nameTrack(0, "worker \"0\"");
    {
        obs::Span outer("outer");
        obs::Span inner("inner", "engine");
    }
    tracer.recordComplete("job #1", "runner", 5, 10, 0);
    ASSERT_EQ(3u, tracer.eventCount());

    std::ostringstream os;
    tracer.writeJson(os);
    std::string json = os.str();
    expectValidJson(json);
    EXPECT_NE(std::string::npos, json.find("\"traceEvents\""));
    EXPECT_NE(std::string::npos, json.find("\"ph\": \"X\""));
    EXPECT_NE(std::string::npos, json.find("\"ph\": \"M\""));
    EXPECT_NE(std::string::npos, json.find("\"thread_name\""));
    EXPECT_NE(std::string::npos, json.find("\"displayTimeUnit\": \"ms\""));

    tracer.clear();
    std::ostringstream empty;
    tracer.writeJson(empty);
    expectValidJson(empty.str());
}

TEST_F(ObsTest, ThreadTracksAreDistinctUntilBound)
{
    int other = -1;
    std::thread t([&other] { other = obs::threadTrack(); });
    t.join();
    EXPECT_NE(obs::threadTrack(), other);
    EXPECT_GE(other, 1000);  // auto-assigned ids start at 1000
}

// ---------------------------------------------------------------------------
// RunReport.
// ---------------------------------------------------------------------------

TEST_F(ObsTest, RunReportIsValidJsonAndSpecRoundTrips)
{
    sim::ExperimentSpec spec;
    spec.location =
        environment::namedLocation(environment::NamedSite::Newark);
    spec.weeks = 3;
    spec.seed = 99;

    obs::RunReport report;
    report.specText = sim::formatSpec(spec);
    report.seed = spec.seed;
    report.wallSeconds = 1.25;
    report.simSeconds = 1814400.0;
    report.metrics.push_back({"pue", 1.0625});
    report.metrics.push_back({"days", 21.0});

    obs::StatsRegistry reg;
    reg.counter("engine.steps").add(12345);
    reg.histogram("runner.job_seconds", "", obs::kWallClock).record(0.5);

    std::ostringstream os;
    obs::writeRunReport(os, report, reg);
    std::string json = os.str();
    expectValidJson(json);

    // The spec echo parses back to the exact spec that ran.
    std::string echoed =
        unescapeJsonString(extractStringField(json, "spec"));
    EXPECT_EQ(spec, sim::parseSpec(echoed));
    EXPECT_NE(std::string::npos, json.find("\"seed\": 99"));
    EXPECT_NE(std::string::npos, json.find("\"sim_seconds\": 1814400"));
    EXPECT_NE(std::string::npos, json.find("\"pue\": 1.0625"));
    EXPECT_NE(std::string::npos, json.find("\"engine.steps\": 12345"));

    // Deterministic form: wall-clock stats skipped.
    std::ostringstream det;
    obs::DumpOptions opts;
    opts.skipWallClock = true;
    obs::writeRunReport(det, report, reg, opts);
    expectValidJson(det.str());
    EXPECT_EQ(std::string::npos, det.str().find("runner.job_seconds"));
}

// ---------------------------------------------------------------------------
// The locked acceptance property: a parallel sweep's deterministic stats
// and per-run reports are byte-identical across thread counts.
// ---------------------------------------------------------------------------

namespace {

/** A tiny world sweep (the Figures 12/13 shape, shrunk for a test). */
std::vector<sim::ExperimentSpec>
miniWorldSweep(const std::string &report_dir)
{
    auto sites = environment::worldGrid(2);
    std::vector<sim::ExperimentSpec> specs;
    for (size_t i = 0; i < sites.size(); ++i) {
        sim::ExperimentSpec spec;
        spec.location = sites[i];
        spec.workload = sim::WorkloadKind::FacebookProfile;
        spec.weeks = 2;
        spec.physicsStepS = 120.0;
        spec.seed = sim::ExperimentRunner::deriveSeed(7, i, sites[i].name);
        spec.system = sim::SystemId::Baseline;
        spec.reportJsonPath =
            report_dir + "report_" + std::to_string(2 * i) + ".json";
        specs.push_back(spec);
        spec.system = sim::SystemId::AllNd;
        spec.reportJsonPath =
            report_dir + "report_" + std::to_string(2 * i + 1) + ".json";
        specs.push_back(spec);
    }
    return specs;
}

std::string
readFileStrippingWallClock(const std::string &path)
{
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream out;
    std::string line;
    while (std::getline(in, line))
        if (line.find("wall_seconds") == std::string::npos)
            out << line << "\n";
    return out.str();
}

} // anonymous namespace

TEST_F(ObsTest, SweepStatsAndReportsAreByteIdenticalAcrossThreadCounts)
{
    std::string dumps[2];
    std::vector<std::string> reports[2];
    const int thread_counts[2] = {1, 8};

    for (int run = 0; run < 2; ++run) {
        // Same report paths both times (they are echoed inside the
        // reports); run 0 reads and removes them before run 1 starts.
        std::vector<sim::ExperimentSpec> specs =
            miniWorldSweep(::testing::TempDir() + "obs_sweep_");

        obs::registry().clear();
        obs::setEnabled(true);
        sim::RunnerConfig rc;
        rc.threads = thread_counts[run];
        sim::SweepOutcome outcome = sim::ExperimentRunner(rc).run(specs);
        obs::setEnabled(false);
        ASSERT_TRUE(outcome.allOk());

        obs::DumpOptions opts;
        opts.skipWallClock = true;
        std::ostringstream os;
        obs::registry().dumpText(os, opts);
        dumps[run] = os.str();

        for (const sim::ExperimentSpec &spec : specs) {
            reports[run].push_back(
                readFileStrippingWallClock(spec.reportJsonPath));
            std::remove(spec.reportJsonPath.c_str());
        }
    }

    EXPECT_EQ(dumps[0], dumps[1]);
    EXPECT_FALSE(dumps[0].empty());
    EXPECT_NE(std::string::npos, dumps[0].find("engine.steps"));
    EXPECT_NE(std::string::npos, dumps[0].find("runner.jobs"));
    ASSERT_EQ(reports[0].size(), reports[1].size());
    for (size_t i = 0; i < reports[0].size(); ++i)
        EXPECT_EQ(reports[0][i], reports[1][i]) << "report " << i;
}
