/**
 * @file
 * Tests for the ground-truth plant simulator: directional physics,
 * recirculation gradients, humidity, disks, and numerical stability.
 */

#include <gtest/gtest.h>

#include "physics/psychrometrics.hpp"
#include "plant/parasol.hpp"
#include "util/stats.hpp"

using namespace coolair;
using namespace coolair::plant;
using coolair::cooling::Regime;

namespace {

environment::WeatherSample
weather(double temp_c, double rh = 50.0)
{
    environment::WeatherSample w;
    w.tempC = temp_c;
    w.rhPercent = rh;
    w.absHumidity = physics::absoluteHumidity(temp_c, rh);
    return w;
}

/** Run @p minutes of simulation under fixed conditions. */
void
run(Plant &plant, double minutes, const environment::WeatherSample &w,
    const PodLoad &load, const Regime &regime, double dt = 30.0)
{
    int steps = int(minutes * 60.0 / dt);
    for (int i = 0; i < steps; ++i)
        plant.step(dt, w, load, regime);
}

double
avgInlet(const Plant &plant)
{
    double sum = 0.0;
    for (int p = 0; p < plant.config().numPods; ++p)
        sum += plant.truePodInletC(p);
    return sum / plant.config().numPods;
}

} // anonymous namespace

TEST(Plant, ClosedContainerWarmsUnderLoad)
{
    Plant plant(PlantConfig::parasol(), 1);
    auto w = weather(15.0);
    plant.initializeSteadyState(w, 5.0);
    PodLoad load = PodLoad::uniform(8, 8, 0.8);

    double before = avgInlet(plant);
    run(plant, 60.0, w, load, Regime::closed());
    double after = avgInlet(plant);
    EXPECT_GT(after, before + 2.0);
}

TEST(Plant, FreeCoolingPullsTowardOutside)
{
    Plant plant(PlantConfig::parasol(), 1);
    auto w = weather(10.0);
    plant.initializeSteadyState(w, 15.0);  // start warm inside
    PodLoad load = PodLoad::uniform(8, 8, 0.5);

    run(plant, 90.0, w, load, Regime::freeCooling(1.0));
    // Full-fan steady state sits a few degrees above outside.
    EXPECT_LT(avgInlet(plant), 10.0 + 8.0);
    EXPECT_GT(avgInlet(plant), 10.0);
}

TEST(Plant, FasterFanCoolsCloserToOutside)
{
    auto w = weather(12.0);
    PodLoad load = PodLoad::uniform(8, 8, 0.6);

    Plant slow(PlantConfig::parasol(), 1);
    slow.initializeSteadyState(w, 12.0);
    run(slow, 120.0, w, load, Regime::freeCooling(0.15));

    Plant fast(PlantConfig::parasol(), 1);
    fast.initializeSteadyState(w, 12.0);
    run(fast, 120.0, w, load, Regime::freeCooling(1.0));

    EXPECT_LT(avgInlet(fast), avgInlet(slow));
}

TEST(Plant, AcCompressorCoolsBelowFanOnly)
{
    auto w = weather(33.0);
    PodLoad load = PodLoad::uniform(8, 8, 0.5);

    Plant fan_only(PlantConfig::parasol(), 1);
    fan_only.initializeSteadyState(w, 4.0);
    run(fan_only, 120.0, w, load, Regime::acFanOnly());

    Plant comp(PlantConfig::parasol(), 1);
    comp.initializeSteadyState(w, 4.0);
    run(comp, 120.0, w, load, Regime::acCompressor(1.0));

    EXPECT_LT(avgInlet(comp), avgInlet(fan_only) - 4.0);
}

TEST(Plant, RecirculationGradientAcrossPods)
{
    // When sealed, pods with higher recirculation exposure run warmer
    // (the lever behind CoolAir's spatial placement).
    PlantConfig pc = PlantConfig::parasol();
    Plant plant(pc, 1);
    auto w = weather(15.0);
    plant.initializeSteadyState(w, 5.0);
    run(plant, 120.0, w, PodLoad::uniform(8, 8, 0.7), Regime::closed());

    // Config grades recirc from pod 0 (least) to pod 7 (most).
    EXPECT_GT(plant.truePodInletC(7), plant.truePodInletC(0) + 0.8);
}

TEST(Plant, HumidityTracksOutsideUnderFreeCooling)
{
    Plant plant(PlantConfig::parasol(), 1);
    auto humid = weather(22.0, 90.0);
    plant.initializeSteadyState(weather(22.0, 40.0), 5.0);
    run(plant, 120.0, humid, PodLoad::uniform(8, 8, 0.4),
        Regime::freeCooling(0.8));
    // Inside absolute humidity converges to the outside value.
    auto sensors = plant.readSensors();
    EXPECT_NEAR(sensors.coldAisleAbsHumidity, humid.absHumidity, 1.5);
}

TEST(Plant, CompressorDehumidifies)
{
    Plant plant(PlantConfig::parasol(), 1);
    auto humid = weather(30.0, 90.0);
    plant.initializeSteadyState(humid, 4.0);
    double abs_before = plant.readSensors().coldAisleAbsHumidity;
    run(plant, 180.0, humid, PodLoad::uniform(8, 8, 0.5),
        Regime::acCompressor(1.0));
    auto sensors = plant.readSensors();
    // Moisture is removed: absolute humidity falls toward the coil's
    // saturation value.  (Relative humidity may *read* higher because
    // the air is now colder — a real psychrometric effect.)
    EXPECT_LT(sensors.coldAisleAbsHumidity, abs_before - 2.0);
    double coil_abs =
        physics::absoluteHumidity(plant.config().acCoilC, 100.0);
    EXPECT_GT(sensors.coldAisleAbsHumidity, coil_abs - 1.0);
}

TEST(Plant, DiskTempsTrackInletPlusLoadOffset)
{
    Plant plant(PlantConfig::parasol(), 1);
    auto w = weather(18.0);
    plant.initializeSteadyState(w, 6.0);

    // 50 % disk utilization: offset ~= idle + half the busy span
    // (Figure 1 shows disks ~10 C above inlets at 50 % utilization).
    run(plant, 180.0, w, PodLoad::uniform(8, 8, 0.5),
        Regime::freeCooling(0.5));
    const PlantConfig &pc = plant.config();
    double expected_offset =
        pc.diskOffsetIdleC + 0.5 * pc.diskOffsetBusySpanC;
    for (int p = 0; p < pc.numPods; ++p) {
        EXPECT_NEAR(plant.diskTempC(p) - plant.truePodInletC(p),
                    expected_offset, 2.0);
    }
}

TEST(Plant, ItPowerMatchesServerModel)
{
    Plant plant(PlantConfig::parasol(), 1);
    auto w = weather(20.0);

    // All 64 awake at 50 %: 64 * (22 + 4) = 1664 W.
    plant.step(30.0, w, PodLoad::uniform(8, 8, 0.5), Regime::closed());
    EXPECT_NEAR(plant.itPowerW(), 1664.0, 1e-9);

    // Half asleep: 32*(22+4) + 32*2 = 896 W.
    PodLoad half = PodLoad::uniform(8, 8, 0.5);
    for (auto &a : half.activeServers)
        a = 4;
    plant.step(30.0, w, half, Regime::closed());
    EXPECT_NEAR(plant.itPowerW(), 896.0, 1e-9);
}

TEST(Plant, SensorNoiseMatchesConfig)
{
    PlantConfig pc = PlantConfig::parasol();
    Plant plant(pc, 3);
    auto w = weather(20.0);
    plant.initializeSteadyState(w, 5.0);

    // Repeatedly read without stepping: spread comes only from noise.
    coolair::util::RunningStats noise;
    double truth = plant.truePodInletC(0);
    for (int i = 0; i < 3000; ++i)
        noise.add(plant.readSensors().podInletC[0] - truth);
    EXPECT_NEAR(noise.mean(), 0.0, 0.02);
    EXPECT_NEAR(noise.stddev(), pc.sensorNoiseC, 0.02);
}

TEST(Plant, StableAtLargeTimeStep)
{
    // The exponential-relaxation integrator must not oscillate or blow
    // up even with a 10-minute step.
    Plant plant(PlantConfig::parasol(), 1);
    auto w = weather(5.0);
    plant.initializeSteadyState(w, 10.0);
    PodLoad load = PodLoad::uniform(8, 8, 0.9);
    for (int i = 0; i < 50; ++i) {
        plant.step(600.0, w, load, Regime::freeCooling(1.0));
        for (int p = 0; p < 8; ++p) {
            ASSERT_GT(plant.truePodInletC(p), -20.0);
            ASSERT_LT(plant.truePodInletC(p), 60.0);
        }
    }
}

TEST(Plant, DeterministicGivenSeed)
{
    Plant a(PlantConfig::parasol(), 9), b(PlantConfig::parasol(), 9);
    auto w = weather(14.0);
    a.initializeSteadyState(w, 6.0);
    b.initializeSteadyState(w, 6.0);
    PodLoad load = PodLoad::uniform(8, 8, 0.3);
    for (int i = 0; i < 100; ++i) {
        a.step(30.0, w, load, Regime::freeCooling(0.4));
        b.step(30.0, w, load, Regime::freeCooling(0.4));
    }
    for (int p = 0; p < 8; ++p)
        EXPECT_DOUBLE_EQ(a.truePodInletC(p), b.truePodInletC(p));
    EXPECT_EQ(a.readSensors().podInletC, b.readSensors().podInletC);
}

TEST(Plant, SmoothConfigUsesSmoothActuators)
{
    PlantConfig pc = PlantConfig::smoothParasol();
    EXPECT_EQ(pc.actuators.style, cooling::ActuatorStyle::Smooth);
    Plant plant(pc, 1);
    auto w = weather(10.0);
    plant.initializeSteadyState(w, 8.0);
    plant.step(30.0, w, PodLoad::uniform(8, 8, 0.5),
               Regime::freeCooling(1.0));
    // One 30 s step into a commanded 100 % fan: still ramping.
    EXPECT_LT(plant.actuators().state().fcFanSpeed, 0.2);
}

TEST(Plant, AbruptTransitionDropsFast)
{
    // Paper §5.1: opening Parasol at the 15 % minimum speed dropped the
    // inlet 9 C in 12 minutes.  Verify a large, fast drop on a cold day.
    Plant plant(PlantConfig::parasol(), 1);
    auto w = weather(0.0);
    plant.initializeSteadyState(w, 20.0);
    PodLoad load = PodLoad::uniform(8, 8, 0.3);
    run(plant, 30.0, w, load, Regime::closed());
    double before = avgInlet(plant);
    run(plant, 12.0, w, load, Regime::freeCooling(0.15));
    double drop = before - avgInlet(plant);
    EXPECT_GT(drop, 4.0);
}

TEST(PodLoad, UniformFactory)
{
    PodLoad load = PodLoad::uniform(4, 8, 0.5);
    ASSERT_EQ(load.activeServers.size(), 4u);
    for (int a : load.activeServers)
        EXPECT_EQ(a, 8);
    for (double u : load.utilization)
        EXPECT_DOUBLE_EQ(u, 0.5);
}

TEST(SensorReadings, MaxAndAvgHelpers)
{
    SensorReadings s;
    s.podInletC = {20.0, 25.0, 22.0};
    EXPECT_DOUBLE_EQ(s.maxPodInletC(), 25.0);
    EXPECT_NEAR(s.avgPodInletC(), 22.333, 0.001);
}
