/**
 * @file
 * Unit tests for util::Rng: determinism, stream independence, and
 * distribution sanity.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

using namespace coolair::util;

TEST(Rng, DeterministicGivenSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, NamedStreamsDecorrelate)
{
    Rng a(7, "weather"), b(7, "sensors");
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next())
            ++same;
    EXPECT_LT(same, 2);
}

TEST(Rng, SameNamedStreamReproduces)
{
    Rng a(7, "weather"), b(7, "weather");
    for (int i = 0; i < 32; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespected)
{
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformIntInclusiveBounds)
{
    Rng rng(5);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        int64_t v = rng.uniformInt(2, 9);
        EXPECT_GE(v, 2);
        EXPECT_LE(v, 9);
        saw_lo |= v == 2;
        saw_hi |= v == 9;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(Rng, UniformIntDeterministicGivenSeed)
{
    // Rejection sampling must consume draws identically across
    // same-seeded streams.
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.uniformInt(-5, 17), b.uniformInt(-5, 17));
}

TEST(Rng, UniformIntUnbiasedOverSmallSpan)
{
    // Spans that do not divide 2^64 (any span that is not a power of
    // two) are exactly uniform under rejection sampling.
    Rng rng(12);
    int counts[3] = {0, 0, 0};
    const int n = 30000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.uniformInt(0, 2)];
    for (int c : counts)
        EXPECT_NEAR(double(c) / n, 1.0 / 3.0, 0.02);
}

TEST(Rng, NormalMoments)
{
    Rng rng(6);
    double sum = 0.0, sq = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        double x = rng.normal(10.0, 2.0);
        sum += x;
        sq += x * x;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.05);
    EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ExponentialMean)
{
    Rng rng(8);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i) {
        double x = rng.exponential(40.0);
        EXPECT_GE(x, 0.0);
        sum += x;
    }
    EXPECT_NEAR(sum / n, 40.0, 1.5);
}

TEST(Rng, BernoulliFrequency)
{
    Rng rng(9);
    int hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hits += rng.bernoulli(0.3);
    EXPECT_NEAR(double(hits) / n, 0.3, 0.02);
}

TEST(Rng, LogNormalMedian)
{
    Rng rng(10);
    std::vector<double> xs;
    for (int i = 0; i < 20001; ++i)
        xs.push_back(rng.logNormal(std::log(6.0), 1.0));
    std::nth_element(xs.begin(), xs.begin() + xs.size() / 2, xs.end());
    EXPECT_NEAR(xs[xs.size() / 2], 6.0, 0.5);
}

TEST(Rng, ForkIndependence)
{
    Rng root(11);
    Rng child = root.fork("child");
    // The fork advanced root; a fresh root with the same seed diverges
    // from the child.
    Rng fresh(11);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (child.next() == fresh.next())
            ++same;
    EXPECT_LT(same, 2);
}
