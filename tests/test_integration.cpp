/**
 * @file
 * Integration tests: full-stack year-slice experiments reproducing the
 * paper's qualitative claims in miniature (few weeks instead of 52).
 */

#include <gtest/gtest.h>

#include "sim/experiment.hpp"
#include "sim/model_plant.hpp"
#include "workload/cluster.hpp"
#include "workload/trace_gen.hpp"

#include "sim/engine.hpp"

using namespace coolair;
using namespace coolair::sim;
using environment::NamedSite;

namespace {

ExperimentSpec
spec(NamedSite site, SystemId system, int weeks = 9)
{
    ExperimentSpec s;
    s.location = environment::namedLocation(site);
    s.system = system;
    s.weeks = weeks;
    return s;
}

} // anonymous namespace

TEST(Integration, CoolAirReducesMaxRangeAtColdSite)
{
    // Paper Fig. 9 / §6 lesson 7: managing variation is most successful
    // in cold climates.
    ExperimentResult base =
        runYearExperiment(spec(NamedSite::Iceland, SystemId::Baseline));
    ExperimentResult allnd =
        runYearExperiment(spec(NamedSite::Iceland, SystemId::AllNd));
    EXPECT_LT(allnd.system.maxWorstDailyRangeC,
              base.system.maxWorstDailyRangeC);
    EXPECT_LT(allnd.system.avgWorstDailyRangeC,
              base.system.avgWorstDailyRangeC + 0.5);
}

TEST(Integration, ViolationsStayLowUnderCoolAir)
{
    // Paper Fig. 8: CoolAir versions keep average violations < 0.5 C.
    for (SystemId sys : {SystemId::AllNd, SystemId::Variation}) {
        ExperimentResult r =
            runYearExperiment(spec(NamedSite::Newark, sys, 6));
        EXPECT_LT(r.system.avgViolationC, 0.5) << systemName(sys);
    }
}

TEST(Integration, EnergyVersionHasLowPue)
{
    // Paper Fig. 10: the Energy version attains the lowest PUEs among
    // CoolAir versions at cool sites.
    ExperimentResult energy =
        runYearExperiment(spec(NamedSite::Newark, SystemId::Energy, 6));
    ExperimentResult variation =
        runYearExperiment(spec(NamedSite::Newark, SystemId::Variation, 6));
    EXPECT_LT(energy.system.pue, variation.system.pue);
}

TEST(Integration, CoolAirLowersPueAtHotSite)
{
    // Paper: at hot locations CoolAir lowers PUEs vs the baseline.
    // (Short slices sample only some weeks; use a wider slice.)
    ExperimentResult base = runYearExperiment(
        spec(NamedSite::Singapore, SystemId::Baseline, 16));
    ExperimentResult allnd =
        runYearExperiment(spec(NamedSite::Singapore, SystemId::AllNd, 16));
    EXPECT_LT(allnd.system.pue, base.system.pue);
}

TEST(Integration, DeferrableWorkloadRuns)
{
    ExperimentResult def =
        runYearExperiment(spec(NamedSite::Newark, SystemId::AllDef, 4));
    EXPECT_GT(def.system.itKwh, 0.0);
    EXPECT_LT(def.system.avgViolationC, 1.0);
}

TEST(Integration, ProfileWorkloadApproximatesClusterSim)
{
    ExperimentSpec task_spec =
        spec(NamedSite::Newark, SystemId::Baseline, 6);
    ExperimentSpec prof_spec = task_spec;
    prof_spec.workload = WorkloadKind::FacebookProfile;

    ExperimentResult task = runYearExperiment(task_spec);
    ExperimentResult prof = runYearExperiment(prof_spec);
    // The profile replay is the world-sweep fast path; it must land in
    // the same regime as the task-level simulation.
    EXPECT_NEAR(prof.system.pue, task.system.pue, 0.05);
    EXPECT_NEAR(prof.system.avgWorstDailyRangeC,
                task.system.avgWorstDailyRangeC, 2.5);
}

TEST(Integration, ExperimentsAreDeterministic)
{
    ExperimentResult a =
        runYearExperiment(spec(NamedSite::Santiago, SystemId::AllNd, 3));
    ExperimentResult b =
        runYearExperiment(spec(NamedSite::Santiago, SystemId::AllNd, 3));
    EXPECT_DOUBLE_EQ(a.system.pue, b.system.pue);
    EXPECT_DOUBLE_EQ(a.system.maxWorstDailyRangeC,
                     b.system.maxWorstDailyRangeC);
}

TEST(Integration, NutchWorkloadRuns)
{
    ExperimentSpec s = spec(NamedSite::Newark, SystemId::AllNd, 4);
    s.workload = WorkloadKind::Nutch;
    ExperimentResult r = runYearExperiment(s);
    EXPECT_GT(r.system.itKwh, 0.0);
    EXPECT_LT(r.system.avgViolationC, 1.0);
}

TEST(Integration, ForecastBiasHasBoundedImpact)
{
    // Paper §5.2: ±5 C forecast bias changes max range by < ~1 C and
    // PUE slightly.  Allow generous slack on the mini run.
    ExperimentSpec perfect = spec(NamedSite::Newark, SystemId::AllNd, 6);
    ExperimentSpec warm = perfect;
    warm.forecastError.biasC = 5.0;
    ExperimentResult p = runYearExperiment(perfect);
    ExperimentResult w = runYearExperiment(warm);
    EXPECT_NEAR(w.system.maxWorstDailyRangeC,
                p.system.maxWorstDailyRangeC, 3.5);
    EXPECT_NEAR(w.system.pue, p.system.pue, 0.08);
}

TEST(ModelPlantValidation, RealSimTracksPhysicsPlant)
{
    // Figure 6 methodology in miniature: run the baseline day on the
    // physics plant ("real") and on the learned-model plant (Real-Sim),
    // then compare cooling energy and temperature spread.
    environment::Location loc =
        environment::namedLocation(environment::NamedSite::Newark);
    environment::Climate climate = loc.makeClimate(7);

    // Physics-plant run.
    plant::PlantConfig pc = plant::PlantConfig::parasol();
    plant::Plant plant(pc, 7);
    workload::ClusterSim cluster({}, workload::facebookTrace({}));
    BaselineController baseline;
    MetricsCollector real_metrics({}, 8);
    Engine engine(plant, cluster, baseline, climate);
    engine.setMetrics(&real_metrics);
    engine.runDay(150);
    Summary real = real_metrics.summary();

    // Real-Sim run from the same initial conditions.
    ModelPlant model_plant(&sharedBundle().model, pc);
    workload::ClusterSim cluster2({}, workload::facebookTrace({}));
    BaselineController baseline2;
    MetricsCollector sim_metrics({}, 8);
    ModelSimRunner runner(model_plant, cluster2, baseline2, climate);
    runner.setMetrics(&sim_metrics);

    plant::Plant init_plant(pc, 7);
    init_plant.initializeSteadyState(
        climate.sample(util::SimTime::fromCalendar(150, 0)), 6.0);
    runner.runDay(150, init_plant.readSensors());
    Summary sim = sim_metrics.summary();

    // Paper: baseline Real-Sim within ~8 % on the headline measures.
    // Allow looser bounds here (different day, single run; Real-Sim
    // steps at the 2-minute model granularity while the TKS reacts
    // every minute, which exaggerates its cycling amplitude).
    EXPECT_NEAR(sim.avgMaxInletC, real.avgMaxInletC, 3.0);
    EXPECT_NEAR(sim.maxWorstDailyRangeC, real.maxWorstDailyRangeC, 8.0);
    EXPECT_LT(std::abs(sim.coolingKwh - real.coolingKwh),
              std::max(0.5 * real.coolingKwh, 2.5));
}
