/**
 * @file
 * Tests for the utilization-profile workload replay.
 */

#include <gtest/gtest.h>

#include "workload/profile.hpp"
#include "workload/trace_gen.hpp"

using namespace coolair;
using namespace coolair::workload;
using coolair::util::SimTime;
using coolair::util::kSecondsPerHour;

TEST(UtilizationProfile, FromTraceMatchesOfferedLoad)
{
    Trace trace = steadyTrace(0.4, {});
    ClusterConfig cc;
    UtilizationProfile profile = UtilizationProfile::fromTrace(trace, cc);
    // Mean busy fraction tracks the offered utilization.
    EXPECT_NEAR(profile.meanFraction(), 0.4, 0.08);
}

TEST(UtilizationProfile, WrapsDaily)
{
    UtilizationProfile p({0.1, 0.9}, int(util::kSecondsPerDay / 2));
    EXPECT_DOUBLE_EQ(p.demandFraction(SimTime(0)), 0.1);
    EXPECT_DOUBLE_EQ(
        p.demandFraction(SimTime(util::kSecondsPerDay / 2 + 5)), 0.9);
    EXPECT_DOUBLE_EQ(
        p.demandFraction(SimTime(util::kSecondsPerDay + 5)), 0.1);
}

TEST(ProfileWorkload, UnmanagedKeepsAllAwake)
{
    ClusterConfig cc;
    ProfileWorkload wl(cc, UtilizationProfile({0.5}, 600));
    wl.applyPlan(ComputePlan::passthrough());
    wl.step(SimTime(0), 30.0);

    plant::PodLoad load = wl.podLoad();
    int awake = 0;
    for (int a : load.activeServers)
        awake += a;
    EXPECT_EQ(awake, cc.totalServers());
}

TEST(ProfileWorkload, ManagedRespectsTargetAndCovering)
{
    ClusterConfig cc;
    ProfileWorkload wl(cc, UtilizationProfile({0.2}, 600));
    ComputePlan plan = ComputePlan::passthrough();
    plan.manageServerStates = true;
    plan.targetActiveServers = 20;
    wl.applyPlan(plan);
    wl.step(SimTime(0), 30.0);

    plant::PodLoad load = wl.podLoad();
    int awake = 0;
    for (int p = 0; p < cc.numPods; ++p) {
        EXPECT_GE(load.activeServers[size_t(p)], 1);  // covering server
        awake += load.activeServers[size_t(p)];
    }
    EXPECT_EQ(awake, 20);
}

TEST(ProfileWorkload, PodOrderConcentratesLoad)
{
    ClusterConfig cc;
    ProfileWorkload wl(cc, UtilizationProfile({0.25}, 600));
    ComputePlan plan = ComputePlan::passthrough();
    plan.manageServerStates = true;
    plan.targetActiveServers = 24;
    plan.podOrder = {3, 2, 1, 0, 4, 5, 6, 7};
    wl.applyPlan(plan);
    wl.step(SimTime(0), 30.0);

    plant::PodLoad load = wl.podLoad();
    EXPECT_GT(load.activeServers[3], load.activeServers[7]);
    EXPECT_GE(load.utilization[3], load.utilization[7]);
}

TEST(ProfileWorkload, StatusReportsDemand)
{
    ClusterConfig cc;
    ProfileWorkload wl(cc, UtilizationProfile({0.5}, 600));
    wl.applyPlan(ComputePlan::passthrough());
    wl.step(SimTime(0), 30.0);
    WorkloadStatus st = wl.status();
    // 50 % of 128 slots -> 64 slots -> 32 two-slot servers.
    EXPECT_EQ(st.demandServers, 32);
    EXPECT_NEAR(st.offeredUtilization, 0.5, 1e-9);
}
