/**
 * @file
 * Tests for the synthetic climate model: determinism, seasonal and
 * diurnal structure, humidity validity.
 */

#include <cmath>
#include <gtest/gtest.h>

#include "environment/climate.hpp"
#include "environment/location.hpp"
#include "util/stats.hpp"

using namespace coolair;
using namespace coolair::environment;
using coolair::util::SimTime;

namespace {

Climate
makeClimate(uint64_t seed = 1)
{
    ClimateParams p;
    p.annualMeanC = 12.0;
    p.seasonalAmplitudeC = 10.0;
    p.diurnalAmplitudeC = 5.0;
    p.synopticAmplitudeC = 3.0;
    return Climate(p, seed);
}

} // anonymous namespace

TEST(Climate, DeterministicGivenSeed)
{
    Climate a = makeClimate(5), b = makeClimate(5);
    for (int h = 0; h < 100; ++h) {
        SimTime t = SimTime::fromCalendar(h % 365, h % 24);
        EXPECT_DOUBLE_EQ(a.temperature(t), b.temperature(t));
    }
}

TEST(Climate, DifferentSeedsGiveDifferentYears)
{
    Climate a = makeClimate(1), b = makeClimate(2);
    double diff = 0.0;
    for (int d = 0; d < 50; ++d)
        diff += std::fabs(a.temperature(SimTime::fromCalendar(d, 12)) -
                          b.temperature(SimTime::fromCalendar(d, 12)));
    EXPECT_GT(diff, 5.0);
}

TEST(Climate, AnnualMeanIsRespected)
{
    Climate c = makeClimate(3);
    util::RunningStats s;
    for (int d = 0; d < 365; ++d)
        for (int h = 0; h < 24; h += 2)
            s.add(c.temperature(SimTime::fromCalendar(d, h)));
    EXPECT_NEAR(s.mean(), 12.0, 1.5);
}

TEST(Climate, NorthernSummerIsWarm)
{
    Climate c = makeClimate(4);
    double july = c.meanTemperature(SimTime::fromCalendar(195, 0),
                                    SimTime::fromCalendar(202, 0), 3600);
    double january = c.meanTemperature(SimTime::fromCalendar(10, 0),
                                       SimTime::fromCalendar(17, 0), 3600);
    EXPECT_GT(july, january + 10.0);
}

TEST(Climate, SouthernHemisphereFlipsSeasons)
{
    ClimateParams p;
    p.annualMeanC = 14.0;
    p.seasonalAmplitudeC = 8.0;
    p.southernHemisphere = true;
    Climate c(p, 4);
    double july = c.meanTemperature(SimTime::fromCalendar(195, 0),
                                    SimTime::fromCalendar(202, 0), 3600);
    double january = c.meanTemperature(SimTime::fromCalendar(10, 0),
                                       SimTime::fromCalendar(17, 0), 3600);
    EXPECT_LT(july, january - 6.0);
}

TEST(Climate, DiurnalPeakMidAfternoon)
{
    Climate c = makeClimate(6);
    // Smooth temperature peaks near the configured 15:00.
    double best_hour = 0.0, best = -1e9;
    for (double h = 0.0; h < 24.0; h += 0.25) {
        SimTime t(int64_t(100) * util::kSecondsPerDay +
                  int64_t(h * 3600.0));
        double v = c.smoothTemperature(t);
        if (v > best) {
            best = v;
            best_hour = h;
        }
    }
    EXPECT_NEAR(best_hour, 15.0, 1.0);
}

TEST(Climate, SampleHumidityValid)
{
    Climate c = makeClimate(7);
    for (int d = 0; d < 365; d += 3) {
        WeatherSample w = c.sample(SimTime::fromCalendar(d, 9));
        EXPECT_GE(w.rhPercent, 1.0);
        EXPECT_LE(w.rhPercent, 100.0);
        EXPECT_GT(w.absHumidity, 0.0);
    }
}

TEST(Climate, HumidClimateHasHighRh)
{
    ClimateParams humid;
    humid.annualMeanC = 27.0;
    humid.dewPointDepressionC = 2.5;
    humid.dewPointVariabilityC = 1.0;
    ClimateParams arid = humid;
    arid.dewPointDepressionC = 14.0;

    Climate ch(humid, 8), ca(arid, 8);
    util::RunningStats rh_h, rh_a;
    for (int d = 0; d < 365; d += 5) {
        rh_h.add(ch.sample(SimTime::fromCalendar(d, 12)).rhPercent);
        rh_a.add(ca.sample(SimTime::fromCalendar(d, 12)).rhPercent);
    }
    EXPECT_GT(rh_h.mean(), rh_a.mean() + 20.0);
    EXPECT_GT(rh_h.mean(), 70.0);
}

TEST(Climate, ContinuousAcrossMidnight)
{
    Climate c = makeClimate(9);
    for (int d : {0, 99, 364}) {
        SimTime before(int64_t(d + 1) * util::kSecondsPerDay - 30);
        SimTime after(int64_t(d + 1) * util::kSecondsPerDay + 30);
        EXPECT_NEAR(c.temperature(before), c.temperature(after), 0.3)
            << "day " << d;
    }
}

TEST(Climate, MeanTemperatureMatchesPointwise)
{
    Climate c = makeClimate(10);
    SimTime from = SimTime::fromCalendar(40, 6);
    SimTime to = from + util::kSecondsPerHour;
    double mean = c.meanTemperature(from, to, 300);
    EXPECT_GT(mean, c.temperature(from) - 3.0);
    EXPECT_LT(mean, c.temperature(from) + 3.0);
    // Degenerate interval returns the point value.
    EXPECT_DOUBLE_EQ(c.meanTemperature(from, from), c.temperature(from));
}

/** Property over named sites: a year of weather stays physical. */
class NamedSiteClimate : public ::testing::TestWithParam<NamedSite>
{
};

TEST_P(NamedSiteClimate, YearIsPhysical)
{
    Location loc = namedLocation(GetParam());
    Climate c = loc.makeClimate(11);
    util::RunningStats temps;
    for (int d = 0; d < 365; d += 2) {
        for (int h = 0; h < 24; h += 3) {
            WeatherSample w = c.sample(SimTime::fromCalendar(d, h));
            temps.add(w.tempC);
            ASSERT_GE(w.rhPercent, 1.0);
            ASSERT_LE(w.rhPercent, 100.0);
        }
    }
    EXPECT_GT(temps.min(), -45.0);
    EXPECT_LT(temps.max(), 55.0);
    EXPECT_NEAR(temps.mean(), loc.climate.annualMeanC, 2.5);
}

INSTANTIATE_TEST_SUITE_P(AllSites, NamedSiteClimate,
                         ::testing::ValuesIn(allNamedSites()));
