/**
 * @file
 * Unit tests for the persistent content-addressed result store
 * (src/store/): the round trip, every rejection class (stale, corrupt,
 * truncated, collided), the counters, and concurrent lookup/store from
 * the sweep runner's worker pool.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/stats.hpp"
#include "sim/runner.hpp"
#include "store/hot_cache.hpp"
#include "store/result_store.hpp"

using namespace coolair;
namespace fs = std::filesystem;

namespace {

constexpr char kSalt[] = "test-salt-1";
constexpr int kSchema = 1;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

void
writeFile(const std::string &path, const std::string &bytes)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << bytes;
}

} // anonymous namespace

class StoreTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        const ::testing::TestInfo *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir = (fs::temp_directory_path() /
               (std::string("coolair-store-") + info->name()))
                  .string();
        fs::remove_all(dir);
    }
    void TearDown() override { fs::remove_all(dir); }

    std::string dir;
};

TEST_F(StoreTest, RoundTrip)
{
    store::ResultStore st(dir, kSalt, kSchema);
    const std::string id = "site = newark\nsystem = allnd\n";
    const std::string payload = "result = 1\npue = 1.08\n";

    std::string out;
    EXPECT_FALSE(st.lookup(id, out));
    EXPECT_TRUE(st.store(id, payload));
    ASSERT_TRUE(st.lookup(id, out));
    EXPECT_EQ(payload, out);

    const store::StoreStats s = st.stats();
    EXPECT_EQ(2, s.lookups);
    EXPECT_EQ(1, s.hits);
    EXPECT_EQ(1, s.misses);
    EXPECT_EQ(1, s.stores);
    EXPECT_EQ(0, s.staleEntries);
    EXPECT_EQ(0, s.corruptEntries);
    EXPECT_GT(s.bytesWritten, 0);
    EXPECT_GT(s.bytesRead, 0);

    // Reopening the store (fresh process) still serves the entry.
    store::ResultStore again(dir, kSalt, kSchema);
    ASSERT_TRUE(again.lookup(id, out));
    EXPECT_EQ(payload, out);
}

TEST_F(StoreTest, KeysAreDeterministicAndDistinct)
{
    store::ResultStore st(dir, kSalt, kSchema);
    EXPECT_EQ(st.keyFor("a"), st.keyFor("a"));
    EXPECT_NE(st.keyFor("a"), st.keyFor("b"));
    // 128-bit key, hex-encoded.
    EXPECT_EQ(32u, st.keyFor("a").size());

    // The key covers the salt and schema version, not just the id.
    store::ResultStore other_salt(dir, "other-salt", kSchema);
    store::ResultStore other_schema(dir, kSalt, kSchema + 1);
    EXPECT_NE(st.keyFor("a"), other_salt.keyFor("a"));
    EXPECT_NE(st.keyFor("a"), other_schema.keyFor("a"));
}

TEST_F(StoreTest, OverwriteReplacesPayload)
{
    store::ResultStore st(dir, kSalt, kSchema);
    EXPECT_TRUE(st.store("id", "old"));
    EXPECT_TRUE(st.store("id", "new"));
    std::string out;
    ASSERT_TRUE(st.lookup("id", out));
    EXPECT_EQ("new", out);
    EXPECT_EQ(1u, st.diskUsage().entries);
}

TEST_F(StoreTest, StaleSaltEntryIsDroppedNotServed)
{
    const std::string id = "spec-text";
    {
        store::ResultStore writer(dir, "old-salt", kSchema);
        EXPECT_TRUE(writer.store(id, "payload"));
    }
    store::ResultStore st(dir, kSalt, kSchema);
    // Different salt hashes to a different entry file, so this is a
    // plain miss; the stale classification is for entries reached via
    // the same path (e.g. a hand-rolled or future-format file).  Force
    // that by copying the old entry onto the new path.
    store::ResultStore writer(dir, "old-salt", kSchema);
    fs::copy_file(writer.entryPath(id), st.entryPath(id),
                  fs::copy_options::overwrite_existing);
    std::string out;
    EXPECT_FALSE(st.lookup(id, out));
    EXPECT_EQ(1, st.stats().staleEntries);
    // The stale file was removed so the slot heals on the next store.
    EXPECT_FALSE(fs::exists(st.entryPath(id)));
}

TEST_F(StoreTest, StaleSchemaEntryIsDroppedNotServed)
{
    const std::string id = "spec-text";
    store::ResultStore writer(dir, kSalt, kSchema + 1);
    EXPECT_TRUE(writer.store(id, "payload"));
    store::ResultStore st(dir, kSalt, kSchema);
    fs::copy_file(writer.entryPath(id), st.entryPath(id),
                  fs::copy_options::overwrite_existing);
    std::string out;
    EXPECT_FALSE(st.lookup(id, out));
    EXPECT_EQ(1, st.stats().staleEntries);
    EXPECT_FALSE(fs::exists(st.entryPath(id)));
}

TEST_F(StoreTest, CorruptedBytesAreDetectedByCrc)
{
    store::ResultStore st(dir, kSalt, kSchema);
    const std::string id = "spec-text";
    EXPECT_TRUE(st.store(id, "payload-payload-payload"));

    std::string bytes = readFile(st.entryPath(id));
    bytes[bytes.size() - 3] ^= 0x20;  // flip one payload bit
    writeFile(st.entryPath(id), bytes);

    std::string out;
    EXPECT_FALSE(st.lookup(id, out));
    EXPECT_EQ(1, st.stats().corruptEntries);
    EXPECT_FALSE(fs::exists(st.entryPath(id)));

    // The slot heals: a fresh store and lookup work again.
    EXPECT_TRUE(st.store(id, "fresh"));
    ASSERT_TRUE(st.lookup(id, out));
    EXPECT_EQ("fresh", out);
}

TEST_F(StoreTest, TruncatedEntryIsDetected)
{
    store::ResultStore st(dir, kSalt, kSchema);
    const std::string id = "spec-text";
    EXPECT_TRUE(st.store(id, "payload-payload-payload"));

    std::string bytes = readFile(st.entryPath(id));
    writeFile(st.entryPath(id), bytes.substr(0, bytes.size() - 5));

    std::string out;
    EXPECT_FALSE(st.lookup(id, out));
    EXPECT_EQ(1, st.stats().corruptEntries);
    EXPECT_FALSE(fs::exists(st.entryPath(id)));
}

TEST_F(StoreTest, GarbageEntryIsDetected)
{
    store::ResultStore st(dir, kSalt, kSchema);
    const std::string id = "spec-text";
    writeFile(st.entryPath(id), "not a store entry at all\n");
    std::string out;
    EXPECT_FALSE(st.lookup(id, out));
    EXPECT_EQ(1, st.stats().corruptEntries);
}

TEST_F(StoreTest, HashCollisionIsServedAsMiss)
{
    store::ResultStore st(dir, kSalt, kSchema);
    const std::string id_a = "spec-a";
    const std::string id_b = "spec-b";
    EXPECT_TRUE(st.store(id_a, "payload-a"));
    // Simulate a 128-bit hash collision: id_b's entry path holds a
    // CRC-valid entry whose embedded id text is id_a's.
    fs::copy_file(st.entryPath(id_a), st.entryPath(id_b),
                  fs::copy_options::overwrite_existing);

    std::string out;
    EXPECT_FALSE(st.lookup(id_b, out));
    EXPECT_EQ(1, st.stats().collisions);
    // A collided entry is someone else's valid data: left in place.
    EXPECT_TRUE(fs::exists(st.entryPath(id_b)));
    ASSERT_TRUE(st.lookup(id_a, out));
    EXPECT_EQ("payload-a", out);
}

TEST_F(StoreTest, StoreIntoVanishedDirectoryFailsSoftly)
{
    store::ResultStore st(dir, kSalt, kSchema);
    fs::remove_all(dir);
    EXPECT_FALSE(st.store("id", "payload"));
    EXPECT_EQ(1, st.stats().storeFailures);
    std::string out;
    EXPECT_FALSE(st.lookup("id", out));  // degrades to a miss, no throw
}

TEST_F(StoreTest, ConstructorThrowsWhenDirUncreatable)
{
    fs::create_directories(dir);
    writeFile(dir + "/blocker", "a regular file");
    EXPECT_THROW(
        store::ResultStore(dir + "/blocker/sub", kSalt, kSchema),
        std::runtime_error);
}

TEST_F(StoreTest, DiscardRemovesEntry)
{
    store::ResultStore st(dir, kSalt, kSchema);
    EXPECT_TRUE(st.store("id", "payload"));
    EXPECT_TRUE(fs::exists(st.entryPath("id")));
    st.discard("id");
    EXPECT_FALSE(fs::exists(st.entryPath("id")));
    std::string out;
    EXPECT_FALSE(st.lookup("id", out));
}

TEST_F(StoreTest, DiskUsageCountsEntries)
{
    store::ResultStore st(dir, kSalt, kSchema);
    EXPECT_EQ(0u, st.diskUsage().entries);
    EXPECT_TRUE(st.store("a", "payload-a"));
    EXPECT_TRUE(st.store("b", "payload-bee"));
    const store::ResultStore::DiskUsage du = st.diskUsage();
    EXPECT_EQ(2u, du.entries);
    EXPECT_GT(du.bytes, 0u);
}

TEST_F(StoreTest, Crc32MatchesKnownVector)
{
    // The classic IEEE 802.3 check value.
    EXPECT_EQ(0xCBF43926u, store::crc32("123456789"));
    EXPECT_EQ(0x00000000u, store::crc32(""));
}

TEST_F(StoreTest, ConcurrentLookupAndStoreFromWorkerPool)
{
    // Hammer one store from the sweep runner's pool: every worker
    // stores and looks up a mix of shared and private ids.  TSan builds
    // of this test (ctest --preset tsan) check the synchronization;
    // plain builds check the results.
    store::ResultStore st(dir, kSalt, kSchema);
    sim::RunnerConfig rc;
    rc.threads = 8;
    sim::ExperimentRunner runner(rc);

    const size_t kJobs = 64;
    std::vector<uint8_t> ok(kJobs, 0);
    auto failures = runner.forEach(kJobs, [&](size_t i) {
        const std::string shared_id = "shared-" + std::to_string(i % 4);
        const std::string shared_payload = "payload-" + std::to_string(i % 4);
        const std::string own_id = "own-" + std::to_string(i);

        st.store(shared_id, shared_payload);
        std::string out;
        if (st.lookup(shared_id, out) && out != shared_payload)
            return;  // ok[i] stays 0
        st.store(own_id, "mine-" + std::to_string(i));
        if (!st.lookup(own_id, out) || out != "mine-" + std::to_string(i))
            return;
        ok[i] = 1;
    });
    EXPECT_TRUE(failures.empty());
    for (size_t i = 0; i < kJobs; ++i)
        EXPECT_TRUE(ok[i]) << "job " << i;

    const store::StoreStats s = st.stats();
    EXPECT_EQ(0, s.corruptEntries);
    EXPECT_EQ(0, s.storeFailures);
    EXPECT_EQ(4u + kJobs, st.diskUsage().entries);
}

// ---------------------------------------------------------- hot cache
//
// The in-memory tier in front of the store: byte-capped, sharded LRU.
// One shard makes the eviction order deterministic; ids are one byte
// so an entry's charge is 1 + payload bytes.

TEST(HotCache, LruEvictsOldestWithinByteCap)
{
    store::HotResultCache cache(64, /*shards=*/1);
    const std::string payload(30, 'x');  // 31-byte charge per entry

    cache.insert("a", payload);
    cache.insert("b", payload);  // 62 of 64: both fit
    cache.insert("c", payload);  // 93 > 64: "a" (LRU tail) evicts

    std::string out;
    EXPECT_FALSE(cache.lookup("a", out));
    EXPECT_TRUE(cache.lookup("b", out));
    EXPECT_TRUE(cache.lookup("c", out));
    EXPECT_EQ(out, payload);

    const store::HotResultCache::Stats s = cache.stats();
    EXPECT_EQ(1, s.evictions);
    EXPECT_EQ(2, s.entries);
    EXPECT_EQ(62, s.bytes);
    EXPECT_EQ(2, s.hits);
    EXPECT_EQ(1, s.misses);
}

TEST(HotCache, LookupRefreshesRecency)
{
    store::HotResultCache cache(64, /*shards=*/1);
    const std::string payload(30, 'x');

    cache.insert("a", payload);
    cache.insert("b", payload);
    std::string out;
    ASSERT_TRUE(cache.lookup("a", out));  // "a" becomes most recent
    cache.insert("c", payload);           // so "b" is now the victim

    EXPECT_TRUE(cache.lookup("a", out));
    EXPECT_FALSE(cache.lookup("b", out));
    EXPECT_TRUE(cache.lookup("c", out));
}

TEST(HotCache, ReplaceInPlaceChargesOnce)
{
    store::HotResultCache cache(1024, /*shards=*/1);

    cache.insert("a", std::string(10, 'x'));
    cache.insert("a", std::string(30, 'y'));  // same id, new bytes

    std::string out;
    ASSERT_TRUE(cache.lookup("a", out));
    EXPECT_EQ(out, std::string(30, 'y'));

    const store::HotResultCache::Stats s = cache.stats();
    EXPECT_EQ(1, s.entries);
    EXPECT_EQ(31, s.bytes);  // only the replacement's charge remains
    EXPECT_EQ(2, s.insertions);
    EXPECT_EQ(0, s.evictions);
}

TEST(HotCache, OversizedPayloadIsNotCached)
{
    store::HotResultCache cache(64, /*shards=*/1);
    const std::string small(30, 'x');
    cache.insert("a", small);

    // Larger than the whole shard: ignored, and the resident entry
    // is not sacrificed for it.
    cache.insert("big", std::string(100, 'z'));

    std::string out;
    EXPECT_FALSE(cache.lookup("big", out));
    EXPECT_TRUE(cache.lookup("a", out));

    const store::HotResultCache::Stats s = cache.stats();
    EXPECT_EQ(1, s.insertions);
    EXPECT_EQ(0, s.evictions);
    EXPECT_EQ(1, s.entries);
}

TEST(HotCache, ShardedStatsAggregateAndPublish)
{
    store::HotResultCache cache(1 << 16, /*shards=*/4);
    EXPECT_EQ(4, cache.shards());

    for (int i = 0; i < 32; ++i)
        cache.insert("key-" + std::to_string(i), std::string(100, 'p'));

    std::string out;
    for (int i = 0; i < 32; ++i)
        ASSERT_TRUE(cache.lookup("key-" + std::to_string(i), out));
    EXPECT_FALSE(cache.lookup("absent", out));

    const store::HotResultCache::Stats s = cache.stats();
    EXPECT_EQ(32, s.entries);
    EXPECT_EQ(32, s.insertions);
    EXPECT_EQ(32, s.hits);
    EXPECT_EQ(1, s.misses);

    obs::StatsRegistry reg;
    cache.addStats(reg);
    EXPECT_EQ(32, reg.counter("serve.hot_hits", "").value());
    EXPECT_EQ(1, reg.counter("serve.hot_misses", "").value());
    EXPECT_EQ(32, reg.counter("serve.hot_insertions", "").value());
    EXPECT_EQ(0, reg.counter("serve.hot_evictions", "").value());
}
