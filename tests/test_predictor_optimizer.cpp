/**
 * @file
 * Tests for the Cooling Predictor's rollout and the Cooling Optimizer's
 * regime selection, using hand-built models with known dynamics.
 */

#include <gtest/gtest.h>

#include "core/optimizer.hpp"
#include "core/predictor.hpp"
#include "model/cooling_model.hpp"

using namespace coolair;
using namespace coolair::core;
using namespace coolair::model;
using cooling::Regime;
using cooling::RegimeClass;
using cooling::RegimeMenu;

namespace {

/**
 * An AR(1) model toward a fixed point: T' = (1-a)*target + a*T.
 * Expressed in the temperature feature layout (bias, Tin at index 1).
 */
LinearModel
towardModel(double target, double alpha)
{
    std::vector<double> w(TempFeatures::kCount, 0.0);
    w[0] = (1.0 - alpha) * target;
    w[1] = alpha;
    return LinearModel(std::move(w));
}

LinearModel
holdHumidity()
{
    std::vector<double> w(HumidityFeatures::kCount, 0.0);
    w[1] = 1.0;  // H' = H
    return LinearModel(std::move(w));
}

/**
 * Build a 2-pod model bank where "closed" drifts toward 35 C, free
 * cooling toward 18 C, and the AC toward 22 C.
 */
CoolingModel
syntheticModel()
{
    CoolingModelConfig cfg;
    cfg.numPods = 2;
    CoolingModel m(cfg);
    for (int pod = 0; pod < 2; ++pod) {
        for (RegimeClass c :
             {RegimeClass::Closed, RegimeClass::FcLow, RegimeClass::FcMid,
              RegimeClass::FcHigh, RegimeClass::AcFanOnly,
              RegimeClass::AcCompressor}) {
            double target = 35.0;
            if (c == RegimeClass::FcLow || c == RegimeClass::FcMid ||
                c == RegimeClass::FcHigh) {
                target = 18.0;
            } else if (c == RegimeClass::AcCompressor) {
                target = 22.0;
            } else if (c == RegimeClass::AcFanOnly) {
                target = 33.0;
            }
            m.setTempModel({c, c}, pod, towardModel(target, 0.6));
        }
    }
    for (RegimeClass c :
         {RegimeClass::Closed, RegimeClass::FcLow, RegimeClass::FcMid,
          RegimeClass::FcHigh, RegimeClass::AcFanOnly,
          RegimeClass::AcCompressor}) {
        m.setHumidityModel({c, c}, holdHumidity());
    }
    return m;
}

PredictorState
stateAt(double temp)
{
    PredictorState st;
    st.podTempC = {temp, temp};
    st.podTempPrevC = {temp, temp};
    st.coldAbsHumidity = 8.0;
    st.outsideC = 15.0;
    st.outsidePrevC = 15.0;
    st.outsideAbsHumidity = 6.0;
    st.currentRegime = Regime::closed();
    return st;
}

} // anonymous namespace

TEST(Predictor, RolloutConvergesTowardModelFixedPoint)
{
    CoolingModel m = syntheticModel();
    CoolingPredictor pred(&m, 5);
    Trajectory traj = pred.predict(stateAt(30.0), Regime::freeCooling(0.5));
    ASSERT_EQ(traj.steps.size(), 5u);
    // Monotone descent toward 18.
    double prev = 30.0;
    for (const auto &s : traj.steps) {
        EXPECT_LT(s.podTempC[0], prev);
        prev = s.podTempC[0];
    }
    // After 5 steps of alpha=0.6: 18 + 0.6^5 * 12 ~= 18.93.
    EXPECT_NEAR(traj.steps.back().podTempC[0], 18.93, 0.05);
}

TEST(Predictor, EnergyAccumulatesOverHorizon)
{
    CoolingModel m = syntheticModel();
    CoolingPredictor pred(&m, 5);
    Trajectory traj =
        pred.predict(stateAt(30.0), Regime::acCompressor(1.0));
    // 2.2 kW for 5 x 2 min = 1/6 h -> ~0.367 kWh.
    EXPECT_NEAR(traj.coolingEnergyKwh, 2.2 / 6.0, 0.01);

    Trajectory closed = pred.predict(stateAt(30.0), Regime::closed());
    EXPECT_DOUBLE_EQ(closed.coolingEnergyKwh, 0.0);
}

TEST(Predictor, HorizonLengthHonored)
{
    CoolingModel m = syntheticModel();
    CoolingPredictor pred(&m, 8);
    EXPECT_EQ(pred.predict(stateAt(25.0), Regime::closed()).steps.size(),
              8u);
}

TEST(Optimizer, PicksCoolingWhenHot)
{
    CoolingModel m = syntheticModel();
    CoolingPredictor pred(&m, 5);
    UtilityConfig ucfg;
    ucfg.penalizeRate = false;
    CoolingOptimizer opt(RegimeMenu::smooth(), ucfg);

    TemperatureBand band = TemperatureBand::fixed(25.0, 30.0);
    OptimizerDecision d =
        opt.choose(pred, stateAt(33.0), {0, 1}, band);
    // Hot inside: the optimizer must not stay closed (drifts to 35).
    EXPECT_NE(d.regime.mode, cooling::Mode::Closed);
}

TEST(Optimizer, StaysClosedWhenComfortable)
{
    CoolingModel m = syntheticModel();
    // Make closed drift gently around 27 (inside the band).
    for (int pod = 0; pod < 2; ++pod)
        m.setTempModel({RegimeClass::Closed, RegimeClass::Closed}, pod,
                       towardModel(27.0, 0.8));
    CoolingPredictor pred(&m, 5);
    UtilityConfig ucfg;
    CoolingOptimizer opt(RegimeMenu::smooth(), ucfg);

    TemperatureBand band = TemperatureBand::fixed(25.0, 30.0);
    PredictorState st = stateAt(27.0);
    OptimizerDecision d = opt.choose(pred, st, {0, 1}, band);
    // Everything in band; closed is free, so energy awareness picks it.
    EXPECT_EQ(d.regime.mode, cooling::Mode::Closed);
    EXPECT_DOUBLE_EQ(d.penalty, 0.0);
}

TEST(Optimizer, EnergyAwareAvoidsAcWhenFreeCoolingSuffices)
{
    CoolingModel m = syntheticModel();
    CoolingPredictor pred(&m, 5);
    UtilityConfig ucfg;
    ucfg.penalizeRate = false;
    CoolingOptimizer opt(RegimeMenu::smooth(), ucfg);

    TemperatureBand band = TemperatureBand::fixed(16.0, 21.0);
    OptimizerDecision d = opt.choose(pred, stateAt(26.0), {0, 1}, band);
    EXPECT_EQ(d.regime.mode, cooling::Mode::FreeCooling);
}

TEST(Optimizer, IncumbentWinsTies)
{
    // All closed-ish states equal: with zero penalties everywhere and
    // equal (zero) energy, the incumbent regime must be kept.
    CoolingModel m = syntheticModel();
    for (int pod = 0; pod < 2; ++pod) {
        for (RegimeClass c :
             {RegimeClass::Closed, RegimeClass::FcLow, RegimeClass::FcMid,
              RegimeClass::FcHigh, RegimeClass::AcFanOnly,
              RegimeClass::AcCompressor}) {
            m.setTempModel({c, c}, pod, towardModel(27.0, 0.9));
        }
    }
    CoolingPredictor pred(&m, 3);
    UtilityConfig ucfg;
    ucfg.energyAware = false;
    CoolingOptimizer opt(RegimeMenu::parasol(), ucfg);

    TemperatureBand band = TemperatureBand::fixed(20.0, 32.0);
    PredictorState st = stateAt(27.0);
    st.currentRegime = Regime::freeCooling(0.25);
    OptimizerDecision d = opt.choose(pred, st, {0, 1}, band);
    EXPECT_TRUE(d.regime == st.currentRegime);
}

TEST(Optimizer, DecisionReportsDiagnostics)
{
    CoolingModel m = syntheticModel();
    CoolingPredictor pred(&m, 5);
    UtilityConfig ucfg;
    CoolingOptimizer opt(RegimeMenu::smooth(), ucfg);
    TemperatureBand band = TemperatureBand::fixed(25.0, 30.0);
    OptimizerDecision d = opt.choose(pred, stateAt(40.0), {0, 1}, band);
    EXPECT_GT(d.penalty, 0.0);       // nothing avoids all violations
    EXPECT_GE(d.energyKwh, 0.0);
    EXPECT_GE(d.score, d.penalty - 1e-9);
}
