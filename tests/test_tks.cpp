/**
 * @file
 * Tests for the TKS 3000 baseline controller (§4.1 semantics).
 */

#include <gtest/gtest.h>

#include "cooling/tks.hpp"
#include "physics/psychrometrics.hpp"

using namespace coolair::cooling;
namespace physics = coolair::physics;

namespace {

ControlInputs
inputs(double outside, double control, double inside_rh = 50.0,
       double outside_rh = 50.0)
{
    ControlInputs in;
    in.outsideTempC = outside;
    in.controlSensorC = control;
    in.insideRhPercent = inside_rh;
    in.outsideRhPercent = outside_rh;
    in.outsideAbsHumidity =
        physics::absoluteHumidity(outside, outside_rh);
    return in;
}

} // anonymous namespace

TEST(Tks, ColdInsideClosesContainer)
{
    TksController tks;  // SP 25, P 5
    Regime r = tks.control(inputs(10.0, 18.0));
    EXPECT_EQ(r.mode, Mode::Closed);
}

TEST(Tks, ProportionalBandRunsFreeCooling)
{
    TksController tks;
    Regime r = tks.control(inputs(15.0, 23.0));
    EXPECT_EQ(r.mode, Mode::FreeCooling);
    EXPECT_GE(r.fanSpeed, 0.15);
}

TEST(Tks, FanFasterWhenOutsideCloserToInside)
{
    // §4.1: "The closer the two temperatures are, the faster the fan
    // blows."
    TksController tks;
    Regime far = tks.control(inputs(10.0, 23.0));
    Regime close = tks.control(inputs(22.0, 23.0));
    ASSERT_EQ(far.mode, Mode::FreeCooling);
    ASSERT_EQ(close.mode, Mode::FreeCooling);
    EXPECT_GT(close.fanSpeed, far.fanSpeed);
}

TEST(Tks, MinimumFanSpeedIsFifteenPercent)
{
    TksController tks;
    Regime r = tks.control(inputs(2.0, 23.0));
    ASSERT_EQ(r.mode, Mode::FreeCooling);
    EXPECT_GE(r.fanSpeed, 0.15);
}

TEST(Tks, AboveSetpointStillFreeCoolsInLot)
{
    TksController tks;
    Regime r = tks.control(inputs(18.0, 27.0));
    EXPECT_EQ(r.mode, Mode::FreeCooling);
    EXPECT_DOUBLE_EQ(r.fanSpeed, 1.0);
}

TEST(Tks, HotModeSwitchesWithHysteresis)
{
    TksController tks;  // SP 25, hysteresis 1
    EXPECT_FALSE(tks.inHotMode());
    tks.control(inputs(25.5, 24.0));   // below SP + hyst: still LOT
    EXPECT_FALSE(tks.inHotMode());
    tks.control(inputs(26.5, 24.0));   // above SP + hyst: HOT
    EXPECT_TRUE(tks.inHotMode());
    tks.control(inputs(24.5, 24.0));   // not yet below SP - hyst
    EXPECT_TRUE(tks.inHotMode());
    tks.control(inputs(23.5, 24.0));   // below SP - hyst: back to LOT
    EXPECT_FALSE(tks.inHotMode());
}

TEST(Tks, CompressorCycles)
{
    TksController tks;  // SP 25, compressor off below 23, on above 25
    tks.control(inputs(30.0, 24.0));
    ASSERT_TRUE(tks.inHotMode());
    EXPECT_FALSE(tks.compressorOn());

    Regime on = tks.control(inputs(30.0, 25.5));
    EXPECT_TRUE(tks.compressorOn());
    EXPECT_EQ(on.mode, Mode::AirConditioning);
    EXPECT_TRUE(on.compressorOn);

    // Stays on inside the hysteresis band.
    tks.control(inputs(30.0, 24.0));
    EXPECT_TRUE(tks.compressorOn());

    Regime off = tks.control(inputs(30.0, 22.5));
    EXPECT_FALSE(tks.compressorOn());
    EXPECT_EQ(off.mode, Mode::AirConditioning);
    EXPECT_FALSE(off.compressorOn);
}

TEST(Tks, ExtendedBaselineConfig)
{
    TksConfig c = TksConfig::extendedBaseline();
    EXPECT_DOUBLE_EQ(c.setpointC, 30.0);
    EXPECT_TRUE(c.humidityControl);
    EXPECT_DOUBLE_EQ(c.maxRelHumidityPercent, 80.0);
}

TEST(Tks, HumidityControlAvoidsHumidOutsideAir)
{
    TksController tks(TksConfig::extendedBaseline());
    // Warm inside (would free cool), outside saturated and warm enough
    // that admitting it keeps RH above the ceiling.
    ControlInputs in = inputs(24.0, 26.0, 70.0, 100.0);
    Regime r = tks.control(in);
    EXPECT_NE(r.mode, Mode::FreeCooling);
}

TEST(Tks, HumidityControlFallsBackToAcWhenHot)
{
    TksConfig cfg = TksConfig::extendedBaseline();
    cfg.setpointC = 25.0;  // make "too hot to recirculate" easy to hit
    TksController tks(cfg);
    ControlInputs in = inputs(24.0, 26.0, 85.0, 100.0);
    Regime r = tks.control(in);
    EXPECT_EQ(r.mode, Mode::AirConditioning);
    EXPECT_TRUE(r.compressorOn);
}

TEST(Tks, DryOutsideAirStillUsedWithHumidityControl)
{
    TksController tks(TksConfig::extendedBaseline());
    ControlInputs in = inputs(20.0, 28.0, 50.0, 30.0);
    Regime r = tks.control(in);
    EXPECT_EQ(r.mode, Mode::FreeCooling);
}

TEST(Tks, RuntimeSetpointChange)
{
    TksController tks;
    tks.setSetpoint(30.0);
    // 27 C outside is now below the setpoint: LOT mode, free cooling.
    Regime r = tks.control(inputs(27.0, 28.0));
    EXPECT_EQ(r.mode, Mode::FreeCooling);
    EXPECT_FALSE(tks.inHotMode());
}
