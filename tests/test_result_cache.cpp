/**
 * @file
 * End-to-end tests for the persistent experiment result cache: warm
 * sweeps must be byte-identical to cold ones at any thread count,
 * corrupt or stale entries must transparently re-run, failing specs
 * must never poison the store, and cache activity must show up in
 * RunReport JSON.  The warm-vs-cold speedup gate lives in
 * tests/test_cache_speedup.cpp (slow-labelled).
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "environment/world_grid.hpp"
#include "sim/result_cache.hpp"
#include "sim/runner.hpp"
#include "sim/spec_io.hpp"
#include "store/result_store.hpp"

using namespace coolair;
using namespace coolair::sim;
namespace fs = std::filesystem;

namespace {

/** A world sweep shrunk to a 1-week year sample, cache enabled. */
std::vector<ExperimentSpec>
cachedSweepSpecs(size_t num_sites, const std::string &cache_dir)
{
    auto sites = environment::worldGrid(num_sites);
    std::vector<ExperimentSpec> specs;
    specs.reserve(sites.size() * 2);
    for (size_t i = 0; i < sites.size(); ++i) {
        ExperimentSpec spec;
        spec.location = sites[i];
        spec.workload = WorkloadKind::FacebookProfile;
        spec.weeks = 1;
        spec.physicsStepS = 120.0;
        spec.seed = ExperimentRunner::deriveSeed(7, i, sites[i].name);
        spec.cacheDirPath = cache_dir;
        spec.system = SystemId::Baseline;
        specs.push_back(spec);
        spec.system = SystemId::AllNd;
        specs.push_back(spec);
    }
    return specs;
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** The exact serialized bytes of every result, concatenated in order. */
std::string
sweepBytes(const SweepOutcome &sweep)
{
    std::string bytes;
    for (const auto &r : sweep.results)
        bytes += formatResult(r);
    return bytes;
}

} // anonymous namespace

class ResultCacheTest : public ::testing::Test
{
  protected:
    void SetUp() override
    {
        const ::testing::TestInfo *info =
            ::testing::UnitTest::GetInstance()->current_test_info();
        dir = (fs::temp_directory_path() /
               (std::string("coolair-cache-") + info->name()))
                  .string();
        fs::remove_all(dir);
    }
    void TearDown() override { fs::remove_all(dir); }

    std::string dir;
};

TEST_F(ResultCacheTest, WarmSweepIsByteIdenticalAtAnyThreadCount)
{
    std::vector<ExperimentSpec> specs = cachedSweepSpecs(8, dir);

    RunnerConfig cold_config;
    cold_config.threads = 2;
    SweepOutcome cold = ExperimentRunner(cold_config).run(specs);
    ASSERT_TRUE(cold.allOk());
    EXPECT_EQ(0u, cold.cacheHits());
    const std::string cold_bytes = sweepBytes(cold);

    for (int threads : {1, 3, 8}) {
        RunnerConfig config;
        config.threads = threads;
        SweepOutcome warm = ExperimentRunner(config).run(specs);
        ASSERT_TRUE(warm.allOk());
        EXPECT_EQ(specs.size(), warm.cacheHits()) << threads << " threads";
        // The merged output must match the cold run byte for byte.
        EXPECT_EQ(cold_bytes, sweepBytes(warm)) << threads << " threads";
    }
}

TEST_F(ResultCacheTest, CorruptAndStaleEntriesReRunTransparently)
{
    std::vector<ExperimentSpec> specs = cachedSweepSpecs(4, dir);
    SweepOutcome cold = ExperimentRunner(RunnerConfig{1}).run(specs);
    ASSERT_TRUE(cold.allOk());
    const std::string cold_bytes = sweepBytes(cold);

    // Corrupt one entry (bit flip) and truncate another.
    store::ResultStore st = openResultStore(dir);
    const std::string path2 = st.entryPath(resultCacheId(specs[2]));
    std::string bytes = readFile(path2);
    bytes[bytes.size() - 2] ^= 0x10;
    {
        std::ofstream out(path2, std::ios::binary | std::ios::trunc);
        out << bytes;
    }
    const std::string path5 = st.entryPath(resultCacheId(specs[5]));
    bytes = readFile(path5);
    {
        std::ofstream out(path5, std::ios::binary | std::ios::trunc);
        out << bytes.substr(0, bytes.size() / 2);
    }

    SweepOutcome warm = ExperimentRunner(RunnerConfig{1}).run(specs);
    ASSERT_TRUE(warm.allOk());
    // Exactly the two damaged specs re-ran; everything else hit.
    EXPECT_EQ(specs.size() - 2, warm.cacheHits());
    EXPECT_EQ(0, warm.fromCache[2]);
    EXPECT_EQ(0, warm.fromCache[5]);
    // Damaged entries were re-run and re-stored, so the merged output
    // is still byte-identical and the next sweep hits everywhere.
    EXPECT_EQ(cold_bytes, sweepBytes(warm));
    SweepOutcome again = ExperimentRunner(RunnerConfig{1}).run(specs);
    EXPECT_EQ(specs.size(), again.cacheHits());
}

TEST_F(ResultCacheTest, SaltBumpInvalidatesEverything)
{
    std::vector<ExperimentSpec> specs = cachedSweepSpecs(2, dir);
    SweepOutcome cold = ExperimentRunner(RunnerConfig{1}).run(specs);
    ASSERT_TRUE(cold.allOk());

    // A store opened under a different salt (simulating a sim-semantics
    // bump) sees none of the old entries.
    store::ResultStore bumped(dir, "coolair-sim-NEXT", kResultFormatVersion);
    for (const auto &spec : specs) {
        std::string payload;
        EXPECT_FALSE(bumped.lookup(resultCacheId(spec), payload));
    }
}

TEST_F(ResultCacheTest, FailingSpecIsReportedAndNeverStored)
{
    std::vector<ExperimentSpec> specs = cachedSweepSpecs(3, dir);
    specs[3].weeks = -1;  // unrunnable: the scenario builder throws

    SweepOutcome cold = ExperimentRunner(RunnerConfig{2}).run(specs);
    ASSERT_EQ(1u, cold.failures.size());
    EXPECT_EQ(3u, cold.failures[0].index);
    EXPECT_EQ(-1, cold.failures[0].spec.weeks);
    EXPECT_FALSE(cold.failures[0].message.empty());
    EXPECT_FALSE(cold.ok(3));
    EXPECT_EQ(0, cold.fromCache[3]);

    // The failing spec wrote nothing: only the good specs are on disk,
    // and its entry path does not exist.
    store::ResultStore st = openResultStore(dir);
    EXPECT_EQ(specs.size() - 1, size_t(st.diskUsage().entries));
    EXPECT_FALSE(fs::exists(st.entryPath(resultCacheId(specs[3]))));

    // A warm re-run serves every good spec and reports the bad one
    // again (it re-runs every time; failures are never cached).
    SweepOutcome warm = ExperimentRunner(RunnerConfig{2}).run(specs);
    ASSERT_EQ(1u, warm.failures.size());
    EXPECT_EQ(3u, warm.failures[0].index);
    EXPECT_EQ(specs.size() - 1, warm.cacheHits());
    for (size_t i = 0; i < specs.size(); ++i) {
        if (i != 3 && cold.ok(i)) {
            EXPECT_EQ(formatResult(cold.results[i]),
                      formatResult(warm.results[i]));
        }
    }
}

TEST_F(ResultCacheTest, TraceSpecsAreNeverCached)
{
    std::vector<ExperimentSpec> specs = cachedSweepSpecs(1, dir);
    specs[0].traceCsvPath = dir + "-trace.csv";
    ASSERT_FALSE(resultCacheUsable(specs[0]));
    ASSERT_TRUE(resultCacheUsable(specs[1]));

    for (int round = 0; round < 2; ++round) {
        SweepOutcome sweep = ExperimentRunner(RunnerConfig{1}).run(specs);
        ASSERT_TRUE(sweep.allOk());
        EXPECT_EQ(0, sweep.fromCache[0]) << "round " << round;
        // The trace side output is produced on every run, not only the
        // first: remove it and check the next round recreates it.
        EXPECT_TRUE(fs::exists(specs[0].traceCsvPath)) << "round " << round;
        fs::remove(specs[0].traceCsvPath);
    }
    store::ResultStore st = openResultStore(dir);
    EXPECT_EQ(1u, st.diskUsage().entries);
}

TEST_F(ResultCacheTest, RunReportsCarryStoreStatsAndProvenance)
{
    std::vector<ExperimentSpec> specs = cachedSweepSpecs(1, dir);
    const std::string report_path = dir + "-report.json";
    specs[1].reportJsonPath = report_path;

    SweepOutcome cold = ExperimentRunner(RunnerConfig{1}).run(specs);
    ASSERT_TRUE(cold.allOk());
    std::string report = readFile(report_path);
    // A cold run's report shows the store's activity (the miss and the
    // store) but no cache provenance: the metrics came from the engine.
    EXPECT_NE(std::string::npos, report.find("\"store.misses\"")) << report;
    EXPECT_NE(std::string::npos, report.find("\"store.stores\"")) << report;
    EXPECT_EQ(std::string::npos, report.find("result_source")) << report;

    fs::remove(report_path);
    SweepOutcome warm = ExperimentRunner(RunnerConfig{1}).run(specs);
    ASSERT_TRUE(warm.allOk());
    EXPECT_EQ(specs.size(), warm.cacheHits());
    report = readFile(report_path);
    // A warm hit still writes the report, now annotated as served from
    // the cache and carrying the hit in its stats block.
    EXPECT_NE(std::string::npos,
              report.find("\"result_source\": \"cache\""))
        << report;
    EXPECT_NE(std::string::npos, report.find("\"store.hits\"")) << report;
}

