/**
 * @file
 * Tests for the multi-zone datacenter (§6's "each cooling zone gets its
 * own CoolAir-like manager") and the zone balancer.
 */

#include <gtest/gtest.h>

#include "environment/location.hpp"
#include "multizone/multizone.hpp"
#include "sim/experiment.hpp"
#include "workload/trace_gen.hpp"

using namespace coolair;
using namespace coolair::multizone;

namespace {

std::function<std::unique_ptr<sim::Controller>(int)>
baselineFactory()
{
    return [](int) {
        return std::make_unique<sim::BaselineController>();
    };
}

std::function<std::unique_ptr<sim::Controller>(int)>
coolairFactory(environment::Forecaster *forecaster)
{
    return [forecaster](int) -> std::unique_ptr<sim::Controller> {
        core::CoolAirConfig cfg = core::CoolAirConfig::forVersion(
            core::Version::AllNd, cooling::RegimeMenu::smooth());
        return std::make_unique<sim::CoolAirController>(
            cfg, sim::sharedBundle(), forecaster);
    };
}

environment::Climate
newarkClimate()
{
    return environment::namedLocation(environment::NamedSite::Newark)
        .makeClimate(9);
}

} // anonymous namespace

TEST(MultiZone, JobsConservedAcrossZones)
{
    environment::Climate climate = newarkClimate();
    MultiZoneConfig cfg;
    cfg.zones = 3;
    MultiZoneEngine engine(cfg, climate, baselineFactory());

    workload::Trace trace = workload::steadyTrace(0.3, {});
    engine.runDay(150, trace);

    int64_t assigned = 0, completed = 0;
    for (int z = 0; z < engine.zoneCount(); ++z) {
        assigned += engine.zoneJobsAssigned(z);
        completed += engine.zoneJobsCompleted(z);
    }
    EXPECT_EQ(assigned, int64_t(trace.jobs.size()));
    // Short steady jobs: nearly everything completes within the day.
    EXPECT_GE(completed, assigned - 6);
}

TEST(MultiZone, RoundRobinSplitsEvenly)
{
    environment::Climate climate = newarkClimate();
    MultiZoneConfig cfg;
    cfg.zones = 4;
    cfg.policy = BalancePolicy::RoundRobin;
    MultiZoneEngine engine(cfg, climate, baselineFactory());
    engine.runDay(150, workload::steadyTrace(0.3, {}));

    int64_t lo = 1 << 30, hi = 0;
    for (int z = 0; z < 4; ++z) {
        lo = std::min(lo, engine.zoneJobsAssigned(z));
        hi = std::max(hi, engine.zoneJobsAssigned(z));
    }
    EXPECT_LE(hi - lo, 1);
}

TEST(MultiZone, LeastLoadedTracksCapacity)
{
    environment::Climate climate = newarkClimate();
    MultiZoneConfig cfg;
    cfg.zones = 2;
    cfg.policy = BalancePolicy::LeastLoaded;
    MultiZoneEngine engine(cfg, climate, baselineFactory());
    engine.runDay(150, workload::facebookTrace({}));

    // Both zones get substantial shares (no starvation).
    for (int z = 0; z < 2; ++z)
        EXPECT_GT(engine.zoneJobsAssigned(z), 1000);
}

TEST(MultiZone, CoolestFirstPrefersCoolerZones)
{
    environment::Climate climate = newarkClimate();
    MultiZoneConfig cfg;
    cfg.zones = 2;
    cfg.policy = BalancePolicy::CoolestFirst;
    MultiZoneEngine engine(cfg, climate, baselineFactory());
    engine.runDay(150, workload::steadyTrace(0.2, {}));

    // The policy feeds whichever zone is cooler; with symmetric zones
    // both still receive jobs and everything lands somewhere.
    int64_t total = engine.zoneJobsAssigned(0) + engine.zoneJobsAssigned(1);
    EXPECT_EQ(total, int64_t(workload::steadyTrace(0.2, {}).jobs.size()));
}

TEST(MultiZone, PerZoneCoolAirManagersRunIndependently)
{
    environment::Climate climate = newarkClimate();
    environment::Forecaster forecaster(climate);
    MultiZoneConfig cfg;
    cfg.zones = 2;
    MultiZoneEngine engine(cfg, climate, coolairFactory(&forecaster));
    engine.runDay(160, workload::facebookTrace({}));

    for (int z = 0; z < 2; ++z) {
        sim::Summary s = engine.zoneSummary(z);
        EXPECT_EQ(s.days, 1u);
        EXPECT_GT(s.itKwh, 1.0);
        EXPECT_LT(s.avgViolationC, 1.0) << "zone " << z;
    }
}

TEST(MultiZone, AggregateSummarySumsEnergy)
{
    environment::Climate climate = newarkClimate();
    MultiZoneConfig cfg;
    cfg.zones = 3;
    MultiZoneEngine engine(cfg, climate, baselineFactory());
    engine.runDay(150, workload::steadyTrace(0.3, {}));

    double it_sum = 0.0, cool_sum = 0.0;
    for (int z = 0; z < 3; ++z) {
        it_sum += engine.zoneSummary(z).itKwh;
        cool_sum += engine.zoneSummary(z).coolingKwh;
    }
    sim::Summary agg = engine.aggregateSummary();
    EXPECT_NEAR(agg.itKwh, it_sum, 1e-9);
    EXPECT_NEAR(agg.coolingKwh, cool_sum, 1e-9);
    EXPECT_NEAR(agg.pue, (it_sum + cool_sum + 0.08 * it_sum) / it_sum,
                1e-9);
}

TEST(MultiZone, PolicyNames)
{
    EXPECT_STREQ(policyName(BalancePolicy::RoundRobin), "round-robin");
    EXPECT_STREQ(policyName(BalancePolicy::CoolestFirst),
                 "coolest-first");
    EXPECT_STREQ(policyName(BalancePolicy::LeastLoaded), "least-loaded");
}
