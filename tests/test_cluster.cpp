/**
 * @file
 * Tests for the Hadoop-like cluster simulator: scheduling, power states,
 * covering subset, deferral, and the paper's power-cycle budget claim.
 */

#include <gtest/gtest.h>

#include "util/sim_time.hpp"
#include "workload/cluster.hpp"
#include "workload/trace_gen.hpp"

using namespace coolair;
using namespace coolair::workload;
using coolair::util::SimTime;
using coolair::util::kSecondsPerDay;
using coolair::util::kSecondsPerHour;

namespace {

/** Step the cluster through [from, to) at 30 s resolution. */
void
runRange(ClusterSim &sim, int64_t from, int64_t to)
{
    for (int64_t t = from; t < to; t += 30)
        sim.step(SimTime(t), 30.0);
}

Trace
tinyTrace()
{
    Trace t;
    t.name = "tiny";
    Job j;
    j.id = 0;
    j.submitS = 600;
    j.startDeadlineS = 600;
    j.mapTasks = 4;
    j.reduceTasks = 1;
    j.mapTaskDurS = 120;
    j.reduceTaskDurS = 60;
    t.jobs.push_back(j);
    return t;
}

} // anonymous namespace

TEST(ClusterSim, CompletesAllJobsUnmanaged)
{
    ClusterSim sim({}, steadyTrace(0.3, {}));
    sim.applyPlan(ComputePlan::passthrough());
    runRange(sim, 0, kSecondsPerDay);
    ClusterStats st = sim.stats();
    Trace ref = steadyTrace(0.3, {});
    // All but possibly the last few submitted jobs complete by midnight.
    EXPECT_GE(st.jobsCompleted, int64_t(ref.jobs.size()) - 5);
}

TEST(ClusterSim, SingleJobLifecycle)
{
    ClusterSim sim({}, tinyTrace());
    sim.applyPlan(ComputePlan::passthrough());

    runRange(sim, 0, 570);
    EXPECT_EQ(sim.busySlots(), 0);          // not yet submitted

    runRange(sim, 570, 720);
    EXPECT_EQ(sim.busySlots(), 4);          // all maps running

    runRange(sim, 720, 750);
    EXPECT_EQ(sim.stats().tasksCompleted, 4);  // maps done, reduce running
    EXPECT_EQ(sim.busySlots(), 1);

    runRange(sim, 750, 1200);
    EXPECT_EQ(sim.stats().jobsCompleted, 1);
    EXPECT_EQ(sim.stats().tasksCompleted, 5);
    EXPECT_EQ(sim.busySlots(), 0);
}

TEST(ClusterSim, ManagedSleepRespectsCoveringSubset)
{
    ClusterConfig cc;
    ClusterSim sim(cc, Trace{});
    ComputePlan plan = ComputePlan::passthrough();
    plan.manageServerStates = true;
    plan.targetActiveServers = 0;   // ask for fewer than allowed
    sim.applyPlan(plan);
    runRange(sim, 0, 600);

    EXPECT_EQ(sim.awakeServers(), cc.coveringSubsetSize);
    int covering_awake = 0;
    for (int s = 0; s < cc.totalServers(); ++s)
        if (sim.serverState(s) != ServerState::Sleeping)
            ++covering_awake;
    EXPECT_EQ(covering_awake, cc.coveringSubsetSize);
}

TEST(ClusterSim, WakesForTarget)
{
    ClusterSim sim({}, Trace{});
    ComputePlan plan = ComputePlan::passthrough();
    plan.manageServerStates = true;
    plan.targetActiveServers = 8;
    sim.applyPlan(plan);
    runRange(sim, 0, 300);
    EXPECT_EQ(sim.awakeServers(), 8);

    plan.targetActiveServers = 40;
    sim.applyPlan(plan);
    runRange(sim, 300, 600);
    EXPECT_EQ(sim.awakeServers(), 40);
}

TEST(ClusterSim, BusyServersDecommissionBeforeSleeping)
{
    // Load the cluster, then shrink hard: servers with running tasks
    // must pass through Decommissioned (still counted awake).
    ClusterSim sim({}, steadyTrace(0.8, {}));
    ComputePlan plan = ComputePlan::passthrough();
    plan.manageServerStates = true;
    plan.targetActiveServers = 64;
    sim.applyPlan(plan);
    runRange(sim, 0, 3600);
    ASSERT_GT(sim.busySlots(), 10);

    plan.targetActiveServers = 8;
    sim.applyPlan(plan);
    sim.step(SimTime(3600), 30.0);

    int decommissioned = 0;
    for (int s = 0; s < 64; ++s)
        if (sim.serverState(s) == ServerState::Decommissioned)
            ++decommissioned;
    EXPECT_GT(decommissioned, 0);

    // Once their tasks finish, they descend to Sleeping.
    runRange(sim, 3630, 3600 + 2400);
    EXPECT_LE(sim.awakeServers(), 20);
}

TEST(ClusterSim, PodOrderFillsPreferredPodsFirst)
{
    ClusterConfig cc;
    ClusterSim sim(cc, steadyTrace(0.15, {}));
    ComputePlan plan = ComputePlan::passthrough();
    plan.manageServerStates = true;
    plan.targetActiveServers = 24;
    plan.podOrder = {7, 6, 5, 4, 3, 2, 1, 0};
    sim.applyPlan(plan);
    runRange(sim, 0, 7200);

    plant::PodLoad load = sim.podLoad();
    // Preferred pods carry more awake servers and more of the load.
    EXPECT_GT(load.activeServers[7], load.activeServers[0]);
    EXPECT_GE(load.utilization[7], load.utilization[0]);
}

TEST(ClusterSim, DeferralHonorsHourMaskAndDeadline)
{
    Trace t = tinyTrace();
    t.makeDeferrable(6.0);  // deadline at 600 + 6 h
    ClusterSim sim({}, t);

    ComputePlan plan = ComputePlan::passthrough();
    plan.manageServerStates = true;
    plan.targetActiveServers = 64;
    plan.hourAllowed.fill(false);
    plan.hourAllowed[5] = true;  // only 05:00-06:00 allowed
    sim.applyPlan(plan);

    // Job submits at 00:10 but must not start before 05:00.
    runRange(sim, 0, 4 * kSecondsPerHour);
    EXPECT_EQ(sim.busySlots(), 0);

    runRange(sim, 4 * kSecondsPerHour, 5 * kSecondsPerHour + 600);
    // Released at 05:00 (and short enough to already be done).
    EXPECT_GT(sim.stats().tasksCompleted, 0);
}

TEST(ClusterSim, DeadlineForcesRelease)
{
    Trace t = tinyTrace();
    t.makeDeferrable(2.0);  // deadline at 600 + 2 h
    ClusterSim sim({}, t);

    ComputePlan plan = ComputePlan::passthrough();
    plan.manageServerStates = true;
    plan.hourAllowed.fill(false);  // never allowed...
    sim.applyPlan(plan);

    runRange(sim, 0, 600 + 2 * kSecondsPerHour + 300);
    EXPECT_GT(sim.stats().tasksCompleted, 0);  // ...the deadline wins
}

TEST(ClusterSim, PowerCyclesWithinLoadUnloadBudget)
{
    // Paper §4.2: no disk should power-cycle more than ~2.2 times per
    // hour on average; the load/unload budget allows 8.5/hour.
    ClusterSim sim({}, facebookTrace({}));
    ComputePlan plan = ComputePlan::passthrough();
    plan.manageServerStates = true;

    for (int64_t t = 0; t < kSecondsPerDay; t += 30) {
        if (t % 600 == 0) {
            // A plausible controller: target tracks demand with decay.
            WorkloadStatus st = sim.status();
            int target = std::max(st.demandServers + 8,
                                  plan.targetActiveServers * 8 / 10);
            plan.targetActiveServers = target;
            sim.applyPlan(plan);
        }
        sim.step(SimTime(t), 30.0);
    }
    ClusterStats st = sim.stats();
    EXPECT_LT(st.maxPowerCyclesPerHour, 8.5);
}

TEST(ClusterSim, UtilizationReportedPerPod)
{
    ClusterSim sim({}, steadyTrace(0.4, {}));
    sim.applyPlan(ComputePlan::passthrough());
    runRange(sim, 0, 3 * kSecondsPerHour);

    plant::PodLoad load = sim.podLoad();
    ASSERT_EQ(load.activeServers.size(), 8u);
    double total_util = 0.0;
    for (int p = 0; p < 8; ++p) {
        EXPECT_EQ(load.activeServers[size_t(p)], 8);
        total_util += load.utilization[size_t(p)];
    }
    EXPECT_GT(total_util / 8.0, 0.15);
    EXPECT_LT(total_util / 8.0, 0.85);

    WorkloadStatus st = sim.status();
    EXPECT_GT(st.offeredUtilization, 0.1);
    EXPECT_EQ(st.awakeServers, 64);
}

TEST(ClusterSim, TraceRepeatsDaily)
{
    ClusterSim sim({}, tinyTrace());
    sim.applyPlan(ComputePlan::passthrough());
    runRange(sim, 0, kSecondsPerDay);
    EXPECT_EQ(sim.stats().jobsCompleted, 1);
    runRange(sim, kSecondsPerDay, 2 * kSecondsPerDay);
    EXPECT_EQ(sim.stats().jobsCompleted, 2);  // replayed on day 2
}

TEST(ClusterSim, JobDelayAccounting)
{
    Trace t = tinyTrace();
    t.makeDeferrable(3.0);
    ClusterSim sim({}, t);
    ComputePlan plan = ComputePlan::passthrough();
    plan.manageServerStates = true;
    plan.hourAllowed.fill(false);
    plan.hourAllowed[2] = true;  // delay into hour 2
    sim.applyPlan(plan);
    runRange(sim, 0, 4 * kSecondsPerHour);
    ClusterStats st = sim.stats();
    ASSERT_EQ(st.jobsCompleted, 1);
    EXPECT_GT(st.meanJobDelayS, 1.0 * kSecondsPerHour);
    EXPECT_LT(st.meanJobDelayS, 2.5 * kSecondsPerHour);
}
