file(REMOVE_RECURSE
  "CMakeFiles/test_tks.dir/test_tks.cpp.o"
  "CMakeFiles/test_tks.dir/test_tks.cpp.o.d"
  "test_tks"
  "test_tks.pdb"
  "test_tks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
