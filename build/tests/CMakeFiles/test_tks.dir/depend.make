# Empty dependencies file for test_tks.
# This may be replaced when dependencies are built.
