# Empty dependencies file for test_predictor_optimizer.
# This may be replaced when dependencies are built.
