file(REMOVE_RECURSE
  "CMakeFiles/test_predictor_optimizer.dir/test_predictor_optimizer.cpp.o"
  "CMakeFiles/test_predictor_optimizer.dir/test_predictor_optimizer.cpp.o.d"
  "test_predictor_optimizer"
  "test_predictor_optimizer.pdb"
  "test_predictor_optimizer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_predictor_optimizer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
