file(REMOVE_RECURSE
  "CMakeFiles/test_location.dir/test_location.cpp.o"
  "CMakeFiles/test_location.dir/test_location.cpp.o.d"
  "test_location"
  "test_location.pdb"
  "test_location[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
