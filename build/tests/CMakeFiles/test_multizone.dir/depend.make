# Empty dependencies file for test_multizone.
# This may be replaced when dependencies are built.
