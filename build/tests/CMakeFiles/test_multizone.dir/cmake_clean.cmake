file(REMOVE_RECURSE
  "CMakeFiles/test_multizone.dir/test_multizone.cpp.o"
  "CMakeFiles/test_multizone.dir/test_multizone.cpp.o.d"
  "test_multizone"
  "test_multizone.pdb"
  "test_multizone[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_multizone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
