file(REMOVE_RECURSE
  "CMakeFiles/test_actuators.dir/test_actuators.cpp.o"
  "CMakeFiles/test_actuators.dir/test_actuators.cpp.o.d"
  "test_actuators"
  "test_actuators.pdb"
  "test_actuators[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_actuators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
