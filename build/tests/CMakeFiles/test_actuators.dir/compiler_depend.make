# Empty compiler generated dependencies file for test_actuators.
# This may be replaced when dependencies are built.
