# Empty compiler generated dependencies file for test_cooling_model.
# This may be replaced when dependencies are built.
