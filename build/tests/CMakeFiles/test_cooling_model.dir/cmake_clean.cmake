file(REMOVE_RECURSE
  "CMakeFiles/test_cooling_model.dir/test_cooling_model.cpp.o"
  "CMakeFiles/test_cooling_model.dir/test_cooling_model.cpp.o.d"
  "test_cooling_model"
  "test_cooling_model.pdb"
  "test_cooling_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cooling_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
