# Empty dependencies file for test_reliability_serialize.
# This may be replaced when dependencies are built.
