file(REMOVE_RECURSE
  "CMakeFiles/test_reliability_serialize.dir/test_reliability_serialize.cpp.o"
  "CMakeFiles/test_reliability_serialize.dir/test_reliability_serialize.cpp.o.d"
  "test_reliability_serialize"
  "test_reliability_serialize.pdb"
  "test_reliability_serialize[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reliability_serialize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
