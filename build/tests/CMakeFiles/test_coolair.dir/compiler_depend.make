# Empty compiler generated dependencies file for test_coolair.
# This may be replaced when dependencies are built.
