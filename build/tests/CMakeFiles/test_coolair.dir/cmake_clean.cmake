file(REMOVE_RECURSE
  "CMakeFiles/test_coolair.dir/test_coolair.cpp.o"
  "CMakeFiles/test_coolair.dir/test_coolair.cpp.o.d"
  "test_coolair"
  "test_coolair.pdb"
  "test_coolair[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_coolair.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
