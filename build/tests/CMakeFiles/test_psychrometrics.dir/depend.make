# Empty dependencies file for test_psychrometrics.
# This may be replaced when dependencies are built.
