file(REMOVE_RECURSE
  "CMakeFiles/test_regime.dir/test_regime.cpp.o"
  "CMakeFiles/test_regime.dir/test_regime.cpp.o.d"
  "test_regime"
  "test_regime.pdb"
  "test_regime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_regime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
