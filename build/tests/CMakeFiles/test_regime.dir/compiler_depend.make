# Empty compiler generated dependencies file for test_regime.
# This may be replaced when dependencies are built.
