# Empty dependencies file for test_metrics_engine.
# This may be replaced when dependencies are built.
