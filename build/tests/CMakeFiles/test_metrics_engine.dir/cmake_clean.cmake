file(REMOVE_RECURSE
  "CMakeFiles/test_metrics_engine.dir/test_metrics_engine.cpp.o"
  "CMakeFiles/test_metrics_engine.dir/test_metrics_engine.cpp.o.d"
  "test_metrics_engine"
  "test_metrics_engine.pdb"
  "test_metrics_engine[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_metrics_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
