file(REMOVE_RECURSE
  "CMakeFiles/test_plant.dir/test_plant.cpp.o"
  "CMakeFiles/test_plant.dir/test_plant.cpp.o.d"
  "test_plant"
  "test_plant.pdb"
  "test_plant[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_plant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
