file(REMOVE_RECURSE
  "CMakeFiles/test_model_plant.dir/test_model_plant.cpp.o"
  "CMakeFiles/test_model_plant.dir/test_model_plant.cpp.o.d"
  "test_model_plant"
  "test_model_plant.pdb"
  "test_model_plant[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_model_plant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
