# Empty compiler generated dependencies file for test_model_plant.
# This may be replaced when dependencies are built.
