file(REMOVE_RECURSE
  "libcoolair_sim.a"
)
