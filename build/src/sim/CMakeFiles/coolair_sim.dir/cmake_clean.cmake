file(REMOVE_RECURSE
  "CMakeFiles/coolair_sim.dir/controller.cpp.o"
  "CMakeFiles/coolair_sim.dir/controller.cpp.o.d"
  "CMakeFiles/coolair_sim.dir/engine.cpp.o"
  "CMakeFiles/coolair_sim.dir/engine.cpp.o.d"
  "CMakeFiles/coolair_sim.dir/experiment.cpp.o"
  "CMakeFiles/coolair_sim.dir/experiment.cpp.o.d"
  "CMakeFiles/coolair_sim.dir/metrics.cpp.o"
  "CMakeFiles/coolair_sim.dir/metrics.cpp.o.d"
  "CMakeFiles/coolair_sim.dir/model_plant.cpp.o"
  "CMakeFiles/coolair_sim.dir/model_plant.cpp.o.d"
  "libcoolair_sim.a"
  "libcoolair_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coolair_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
