# Empty compiler generated dependencies file for coolair_sim.
# This may be replaced when dependencies are built.
