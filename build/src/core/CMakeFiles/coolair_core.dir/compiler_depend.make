# Empty compiler generated dependencies file for coolair_core.
# This may be replaced when dependencies are built.
