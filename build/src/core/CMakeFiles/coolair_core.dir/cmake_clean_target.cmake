file(REMOVE_RECURSE
  "libcoolair_core.a"
)
