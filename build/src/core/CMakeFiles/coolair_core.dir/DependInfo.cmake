
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/band.cpp" "src/core/CMakeFiles/coolair_core.dir/band.cpp.o" "gcc" "src/core/CMakeFiles/coolair_core.dir/band.cpp.o.d"
  "/root/repo/src/core/compute.cpp" "src/core/CMakeFiles/coolair_core.dir/compute.cpp.o" "gcc" "src/core/CMakeFiles/coolair_core.dir/compute.cpp.o.d"
  "/root/repo/src/core/coolair.cpp" "src/core/CMakeFiles/coolair_core.dir/coolair.cpp.o" "gcc" "src/core/CMakeFiles/coolair_core.dir/coolair.cpp.o.d"
  "/root/repo/src/core/optimizer.cpp" "src/core/CMakeFiles/coolair_core.dir/optimizer.cpp.o" "gcc" "src/core/CMakeFiles/coolair_core.dir/optimizer.cpp.o.d"
  "/root/repo/src/core/predictor.cpp" "src/core/CMakeFiles/coolair_core.dir/predictor.cpp.o" "gcc" "src/core/CMakeFiles/coolair_core.dir/predictor.cpp.o.d"
  "/root/repo/src/core/utility.cpp" "src/core/CMakeFiles/coolair_core.dir/utility.cpp.o" "gcc" "src/core/CMakeFiles/coolair_core.dir/utility.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/coolair_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cooling/CMakeFiles/coolair_cooling.dir/DependInfo.cmake"
  "/root/repo/build/src/environment/CMakeFiles/coolair_environment.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/coolair_model.dir/DependInfo.cmake"
  "/root/repo/build/src/plant/CMakeFiles/coolair_plant.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/coolair_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/coolair_physics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
