file(REMOVE_RECURSE
  "CMakeFiles/coolair_core.dir/band.cpp.o"
  "CMakeFiles/coolair_core.dir/band.cpp.o.d"
  "CMakeFiles/coolair_core.dir/compute.cpp.o"
  "CMakeFiles/coolair_core.dir/compute.cpp.o.d"
  "CMakeFiles/coolair_core.dir/coolair.cpp.o"
  "CMakeFiles/coolair_core.dir/coolair.cpp.o.d"
  "CMakeFiles/coolair_core.dir/optimizer.cpp.o"
  "CMakeFiles/coolair_core.dir/optimizer.cpp.o.d"
  "CMakeFiles/coolair_core.dir/predictor.cpp.o"
  "CMakeFiles/coolair_core.dir/predictor.cpp.o.d"
  "CMakeFiles/coolair_core.dir/utility.cpp.o"
  "CMakeFiles/coolair_core.dir/utility.cpp.o.d"
  "libcoolair_core.a"
  "libcoolair_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coolair_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
