file(REMOVE_RECURSE
  "CMakeFiles/coolair_environment.dir/climate.cpp.o"
  "CMakeFiles/coolair_environment.dir/climate.cpp.o.d"
  "CMakeFiles/coolair_environment.dir/forecast.cpp.o"
  "CMakeFiles/coolair_environment.dir/forecast.cpp.o.d"
  "CMakeFiles/coolair_environment.dir/location.cpp.o"
  "CMakeFiles/coolair_environment.dir/location.cpp.o.d"
  "CMakeFiles/coolair_environment.dir/weather.cpp.o"
  "CMakeFiles/coolair_environment.dir/weather.cpp.o.d"
  "CMakeFiles/coolair_environment.dir/world_grid.cpp.o"
  "CMakeFiles/coolair_environment.dir/world_grid.cpp.o.d"
  "libcoolair_environment.a"
  "libcoolair_environment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coolair_environment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
