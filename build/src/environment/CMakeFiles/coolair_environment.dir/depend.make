# Empty dependencies file for coolair_environment.
# This may be replaced when dependencies are built.
