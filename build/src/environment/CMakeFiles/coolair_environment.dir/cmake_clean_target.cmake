file(REMOVE_RECURSE
  "libcoolair_environment.a"
)
