
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/environment/climate.cpp" "src/environment/CMakeFiles/coolair_environment.dir/climate.cpp.o" "gcc" "src/environment/CMakeFiles/coolair_environment.dir/climate.cpp.o.d"
  "/root/repo/src/environment/forecast.cpp" "src/environment/CMakeFiles/coolair_environment.dir/forecast.cpp.o" "gcc" "src/environment/CMakeFiles/coolair_environment.dir/forecast.cpp.o.d"
  "/root/repo/src/environment/location.cpp" "src/environment/CMakeFiles/coolair_environment.dir/location.cpp.o" "gcc" "src/environment/CMakeFiles/coolair_environment.dir/location.cpp.o.d"
  "/root/repo/src/environment/weather.cpp" "src/environment/CMakeFiles/coolair_environment.dir/weather.cpp.o" "gcc" "src/environment/CMakeFiles/coolair_environment.dir/weather.cpp.o.d"
  "/root/repo/src/environment/world_grid.cpp" "src/environment/CMakeFiles/coolair_environment.dir/world_grid.cpp.o" "gcc" "src/environment/CMakeFiles/coolair_environment.dir/world_grid.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/coolair_util.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/coolair_physics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
