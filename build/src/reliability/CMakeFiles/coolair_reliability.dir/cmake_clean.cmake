file(REMOVE_RECURSE
  "CMakeFiles/coolair_reliability.dir/disk_reliability.cpp.o"
  "CMakeFiles/coolair_reliability.dir/disk_reliability.cpp.o.d"
  "libcoolair_reliability.a"
  "libcoolair_reliability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coolair_reliability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
