# Empty dependencies file for coolair_reliability.
# This may be replaced when dependencies are built.
