file(REMOVE_RECURSE
  "libcoolair_reliability.a"
)
