file(REMOVE_RECURSE
  "libcoolair_workload.a"
)
