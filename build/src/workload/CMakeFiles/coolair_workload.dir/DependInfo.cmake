
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/cluster.cpp" "src/workload/CMakeFiles/coolair_workload.dir/cluster.cpp.o" "gcc" "src/workload/CMakeFiles/coolair_workload.dir/cluster.cpp.o.d"
  "/root/repo/src/workload/job.cpp" "src/workload/CMakeFiles/coolair_workload.dir/job.cpp.o" "gcc" "src/workload/CMakeFiles/coolair_workload.dir/job.cpp.o.d"
  "/root/repo/src/workload/profile.cpp" "src/workload/CMakeFiles/coolair_workload.dir/profile.cpp.o" "gcc" "src/workload/CMakeFiles/coolair_workload.dir/profile.cpp.o.d"
  "/root/repo/src/workload/trace_gen.cpp" "src/workload/CMakeFiles/coolair_workload.dir/trace_gen.cpp.o" "gcc" "src/workload/CMakeFiles/coolair_workload.dir/trace_gen.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/coolair_util.dir/DependInfo.cmake"
  "/root/repo/build/src/plant/CMakeFiles/coolair_plant.dir/DependInfo.cmake"
  "/root/repo/build/src/cooling/CMakeFiles/coolair_cooling.dir/DependInfo.cmake"
  "/root/repo/build/src/environment/CMakeFiles/coolair_environment.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/coolair_physics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
