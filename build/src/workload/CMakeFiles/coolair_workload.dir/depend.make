# Empty dependencies file for coolair_workload.
# This may be replaced when dependencies are built.
