file(REMOVE_RECURSE
  "CMakeFiles/coolair_workload.dir/cluster.cpp.o"
  "CMakeFiles/coolair_workload.dir/cluster.cpp.o.d"
  "CMakeFiles/coolair_workload.dir/job.cpp.o"
  "CMakeFiles/coolair_workload.dir/job.cpp.o.d"
  "CMakeFiles/coolair_workload.dir/profile.cpp.o"
  "CMakeFiles/coolair_workload.dir/profile.cpp.o.d"
  "CMakeFiles/coolair_workload.dir/trace_gen.cpp.o"
  "CMakeFiles/coolair_workload.dir/trace_gen.cpp.o.d"
  "libcoolair_workload.a"
  "libcoolair_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coolair_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
