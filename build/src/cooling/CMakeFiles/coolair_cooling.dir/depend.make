# Empty dependencies file for coolair_cooling.
# This may be replaced when dependencies are built.
