file(REMOVE_RECURSE
  "libcoolair_cooling.a"
)
