file(REMOVE_RECURSE
  "CMakeFiles/coolair_cooling.dir/actuators.cpp.o"
  "CMakeFiles/coolair_cooling.dir/actuators.cpp.o.d"
  "CMakeFiles/coolair_cooling.dir/regime.cpp.o"
  "CMakeFiles/coolair_cooling.dir/regime.cpp.o.d"
  "CMakeFiles/coolair_cooling.dir/tks.cpp.o"
  "CMakeFiles/coolair_cooling.dir/tks.cpp.o.d"
  "libcoolair_cooling.a"
  "libcoolair_cooling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coolair_cooling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
