
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cooling/actuators.cpp" "src/cooling/CMakeFiles/coolair_cooling.dir/actuators.cpp.o" "gcc" "src/cooling/CMakeFiles/coolair_cooling.dir/actuators.cpp.o.d"
  "/root/repo/src/cooling/regime.cpp" "src/cooling/CMakeFiles/coolair_cooling.dir/regime.cpp.o" "gcc" "src/cooling/CMakeFiles/coolair_cooling.dir/regime.cpp.o.d"
  "/root/repo/src/cooling/tks.cpp" "src/cooling/CMakeFiles/coolair_cooling.dir/tks.cpp.o" "gcc" "src/cooling/CMakeFiles/coolair_cooling.dir/tks.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/coolair_util.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/coolair_physics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
