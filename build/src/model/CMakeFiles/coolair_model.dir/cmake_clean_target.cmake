file(REMOVE_RECURSE
  "libcoolair_model.a"
)
