# Empty dependencies file for coolair_model.
# This may be replaced when dependencies are built.
