
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/model/cooling_model.cpp" "src/model/CMakeFiles/coolair_model.dir/cooling_model.cpp.o" "gcc" "src/model/CMakeFiles/coolair_model.dir/cooling_model.cpp.o.d"
  "/root/repo/src/model/learner.cpp" "src/model/CMakeFiles/coolair_model.dir/learner.cpp.o" "gcc" "src/model/CMakeFiles/coolair_model.dir/learner.cpp.o.d"
  "/root/repo/src/model/linreg.cpp" "src/model/CMakeFiles/coolair_model.dir/linreg.cpp.o" "gcc" "src/model/CMakeFiles/coolair_model.dir/linreg.cpp.o.d"
  "/root/repo/src/model/model_tree.cpp" "src/model/CMakeFiles/coolair_model.dir/model_tree.cpp.o" "gcc" "src/model/CMakeFiles/coolair_model.dir/model_tree.cpp.o.d"
  "/root/repo/src/model/serialize.cpp" "src/model/CMakeFiles/coolair_model.dir/serialize.cpp.o" "gcc" "src/model/CMakeFiles/coolair_model.dir/serialize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/coolair_util.dir/DependInfo.cmake"
  "/root/repo/build/src/cooling/CMakeFiles/coolair_cooling.dir/DependInfo.cmake"
  "/root/repo/build/src/plant/CMakeFiles/coolair_plant.dir/DependInfo.cmake"
  "/root/repo/build/src/environment/CMakeFiles/coolair_environment.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/coolair_physics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
