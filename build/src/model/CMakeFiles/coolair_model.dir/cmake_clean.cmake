file(REMOVE_RECURSE
  "CMakeFiles/coolair_model.dir/cooling_model.cpp.o"
  "CMakeFiles/coolair_model.dir/cooling_model.cpp.o.d"
  "CMakeFiles/coolair_model.dir/learner.cpp.o"
  "CMakeFiles/coolair_model.dir/learner.cpp.o.d"
  "CMakeFiles/coolair_model.dir/linreg.cpp.o"
  "CMakeFiles/coolair_model.dir/linreg.cpp.o.d"
  "CMakeFiles/coolair_model.dir/model_tree.cpp.o"
  "CMakeFiles/coolair_model.dir/model_tree.cpp.o.d"
  "CMakeFiles/coolair_model.dir/serialize.cpp.o"
  "CMakeFiles/coolair_model.dir/serialize.cpp.o.d"
  "libcoolair_model.a"
  "libcoolair_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coolair_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
