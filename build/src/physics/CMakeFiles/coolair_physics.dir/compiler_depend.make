# Empty compiler generated dependencies file for coolair_physics.
# This may be replaced when dependencies are built.
