file(REMOVE_RECURSE
  "libcoolair_physics.a"
)
