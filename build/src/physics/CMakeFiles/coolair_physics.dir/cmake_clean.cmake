file(REMOVE_RECURSE
  "CMakeFiles/coolair_physics.dir/psychrometrics.cpp.o"
  "CMakeFiles/coolair_physics.dir/psychrometrics.cpp.o.d"
  "libcoolair_physics.a"
  "libcoolair_physics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coolair_physics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
