file(REMOVE_RECURSE
  "CMakeFiles/coolair_util.dir/logging.cpp.o"
  "CMakeFiles/coolair_util.dir/logging.cpp.o.d"
  "CMakeFiles/coolair_util.dir/rng.cpp.o"
  "CMakeFiles/coolair_util.dir/rng.cpp.o.d"
  "CMakeFiles/coolair_util.dir/sim_time.cpp.o"
  "CMakeFiles/coolair_util.dir/sim_time.cpp.o.d"
  "CMakeFiles/coolair_util.dir/stats.cpp.o"
  "CMakeFiles/coolair_util.dir/stats.cpp.o.d"
  "CMakeFiles/coolair_util.dir/table.cpp.o"
  "CMakeFiles/coolair_util.dir/table.cpp.o.d"
  "libcoolair_util.a"
  "libcoolair_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coolair_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
