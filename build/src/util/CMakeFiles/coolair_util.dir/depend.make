# Empty dependencies file for coolair_util.
# This may be replaced when dependencies are built.
