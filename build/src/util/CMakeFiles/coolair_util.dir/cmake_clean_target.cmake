file(REMOVE_RECURSE
  "libcoolair_util.a"
)
