file(REMOVE_RECURSE
  "CMakeFiles/coolair_multizone.dir/multizone.cpp.o"
  "CMakeFiles/coolair_multizone.dir/multizone.cpp.o.d"
  "libcoolair_multizone.a"
  "libcoolair_multizone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coolair_multizone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
