file(REMOVE_RECURSE
  "libcoolair_multizone.a"
)
