# Empty compiler generated dependencies file for coolair_multizone.
# This may be replaced when dependencies are built.
