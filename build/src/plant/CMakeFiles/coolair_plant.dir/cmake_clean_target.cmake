file(REMOVE_RECURSE
  "libcoolair_plant.a"
)
