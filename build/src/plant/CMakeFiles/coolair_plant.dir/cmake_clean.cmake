file(REMOVE_RECURSE
  "CMakeFiles/coolair_plant.dir/parasol.cpp.o"
  "CMakeFiles/coolair_plant.dir/parasol.cpp.o.d"
  "libcoolair_plant.a"
  "libcoolair_plant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coolair_plant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
