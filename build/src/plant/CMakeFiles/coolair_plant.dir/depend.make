# Empty dependencies file for coolair_plant.
# This may be replaced when dependencies are built.
