
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig11_placement.cpp" "bench/CMakeFiles/bench_fig11_placement.dir/bench_fig11_placement.cpp.o" "gcc" "bench/CMakeFiles/bench_fig11_placement.dir/bench_fig11_placement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/reliability/CMakeFiles/coolair_reliability.dir/DependInfo.cmake"
  "/root/repo/build/src/multizone/CMakeFiles/coolair_multizone.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/coolair_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/coolair_core.dir/DependInfo.cmake"
  "/root/repo/build/src/model/CMakeFiles/coolair_model.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/coolair_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/plant/CMakeFiles/coolair_plant.dir/DependInfo.cmake"
  "/root/repo/build/src/environment/CMakeFiles/coolair_environment.dir/DependInfo.cmake"
  "/root/repo/build/src/cooling/CMakeFiles/coolair_cooling.dir/DependInfo.cmake"
  "/root/repo/build/src/physics/CMakeFiles/coolair_physics.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/coolair_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
