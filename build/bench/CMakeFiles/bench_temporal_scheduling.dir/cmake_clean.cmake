file(REMOVE_RECURSE
  "CMakeFiles/bench_temporal_scheduling.dir/bench_temporal_scheduling.cpp.o"
  "CMakeFiles/bench_temporal_scheduling.dir/bench_temporal_scheduling.cpp.o.d"
  "bench_temporal_scheduling"
  "bench_temporal_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_temporal_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
