# Empty compiler generated dependencies file for bench_temporal_scheduling.
# This may be replaced when dependencies are built.
