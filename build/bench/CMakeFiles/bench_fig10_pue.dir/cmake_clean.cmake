file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_pue.dir/bench_fig10_pue.cpp.o"
  "CMakeFiles/bench_fig10_pue.dir/bench_fig10_pue.cpp.o.d"
  "bench_fig10_pue"
  "bench_fig10_pue.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_pue.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
