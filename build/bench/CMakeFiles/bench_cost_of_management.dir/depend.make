# Empty dependencies file for bench_cost_of_management.
# This may be replaced when dependencies are built.
