file(REMOVE_RECURSE
  "CMakeFiles/bench_cost_of_management.dir/bench_cost_of_management.cpp.o"
  "CMakeFiles/bench_cost_of_management.dir/bench_cost_of_management.cpp.o.d"
  "bench_cost_of_management"
  "bench_cost_of_management.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_cost_of_management.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
