# Empty compiler generated dependencies file for bench_nutch_workload.
# This may be replaced when dependencies are built.
