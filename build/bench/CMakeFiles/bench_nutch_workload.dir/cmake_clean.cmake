file(REMOVE_RECURSE
  "CMakeFiles/bench_nutch_workload.dir/bench_nutch_workload.cpp.o"
  "CMakeFiles/bench_nutch_workload.dir/bench_nutch_workload.cpp.o.d"
  "bench_nutch_workload"
  "bench_nutch_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_nutch_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
