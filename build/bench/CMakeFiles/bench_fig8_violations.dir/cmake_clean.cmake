file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_violations.dir/bench_fig8_violations.cpp.o"
  "CMakeFiles/bench_fig8_violations.dir/bench_fig8_violations.cpp.o.d"
  "bench_fig8_violations"
  "bench_fig8_violations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_violations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
