# Empty dependencies file for bench_fig7_coolair_day.
# This may be replaced when dependencies are built.
