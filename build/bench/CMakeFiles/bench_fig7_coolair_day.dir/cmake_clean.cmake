file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_coolair_day.dir/bench_fig7_coolair_day.cpp.o"
  "CMakeFiles/bench_fig7_coolair_day.dir/bench_fig7_coolair_day.cpp.o.d"
  "bench_fig7_coolair_day"
  "bench_fig7_coolair_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_coolair_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
