file(REMOVE_RECURSE
  "CMakeFiles/bench_world_sweep.dir/bench_world_sweep.cpp.o"
  "CMakeFiles/bench_world_sweep.dir/bench_world_sweep.cpp.o.d"
  "bench_world_sweep"
  "bench_world_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_world_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
