# Empty dependencies file for bench_world_sweep.
# This may be replaced when dependencies are built.
