file(REMOVE_RECURSE
  "CMakeFiles/bench_forecast_error.dir/bench_forecast_error.cpp.o"
  "CMakeFiles/bench_forecast_error.dir/bench_forecast_error.cpp.o.d"
  "bench_forecast_error"
  "bench_forecast_error.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_forecast_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
