# Empty dependencies file for bench_forecast_error.
# This may be replaced when dependencies are built.
