file(REMOVE_RECURSE
  "CMakeFiles/bench_max_temperature.dir/bench_max_temperature.cpp.o"
  "CMakeFiles/bench_max_temperature.dir/bench_max_temperature.cpp.o.d"
  "bench_max_temperature"
  "bench_max_temperature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_max_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
