# Empty dependencies file for bench_max_temperature.
# This may be replaced when dependencies are built.
