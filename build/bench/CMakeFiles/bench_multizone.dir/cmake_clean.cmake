file(REMOVE_RECURSE
  "CMakeFiles/bench_multizone.dir/bench_multizone.cpp.o"
  "CMakeFiles/bench_multizone.dir/bench_multizone.cpp.o.d"
  "bench_multizone"
  "bench_multizone.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_multizone.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
