# Empty dependencies file for bench_multizone.
# This may be replaced when dependencies are built.
