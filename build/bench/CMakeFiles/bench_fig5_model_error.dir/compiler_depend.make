# Empty compiler generated dependencies file for bench_fig5_model_error.
# This may be replaced when dependencies are built.
