file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_disk_temps.dir/bench_fig1_disk_temps.cpp.o"
  "CMakeFiles/bench_fig1_disk_temps.dir/bench_fig1_disk_temps.cpp.o.d"
  "bench_fig1_disk_temps"
  "bench_fig1_disk_temps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_disk_temps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
