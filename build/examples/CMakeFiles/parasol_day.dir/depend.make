# Empty dependencies file for parasol_day.
# This may be replaced when dependencies are built.
