file(REMOVE_RECURSE
  "CMakeFiles/parasol_day.dir/parasol_day.cpp.o"
  "CMakeFiles/parasol_day.dir/parasol_day.cpp.o.d"
  "parasol_day"
  "parasol_day.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parasol_day.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
