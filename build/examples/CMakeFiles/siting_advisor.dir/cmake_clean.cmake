file(REMOVE_RECURSE
  "CMakeFiles/siting_advisor.dir/siting_advisor.cpp.o"
  "CMakeFiles/siting_advisor.dir/siting_advisor.cpp.o.d"
  "siting_advisor"
  "siting_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/siting_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
