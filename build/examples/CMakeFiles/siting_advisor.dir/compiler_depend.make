# Empty compiler generated dependencies file for siting_advisor.
# This may be replaced when dependencies are built.
